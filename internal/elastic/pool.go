package elastic

import (
	"errors"

	"scotch/internal/scotch"
	"scotch/internal/sim"
)

// VSwitchPool adapts a running scotch.App to the Pool interface. Grow
// promotes the next standby vSwitch into the mesh live; Shrink drains
// the most recently grown member (LIFO, so the build-time floor is
// never drained by the autoscaler). A drained member returns to the
// back of the standby list and may be grown again later — the overlay
// allocates fresh tunnel ports on re-add, so recycling is safe.
type VSwitchPool struct {
	app     *scotch.App
	standby []uint64
	grown   []uint64
}

// NewVSwitchPool builds a pool over app with the given standby vSwitch
// DPIDs. The standbys must exist in the topology and be connected to
// the controller, but not be mesh members; they join only when the
// autoscaler grows the pool.
func NewVSwitchPool(app *scotch.App, standby []uint64) *VSwitchPool {
	return &VSwitchPool{app: app, standby: append([]uint64(nil), standby...)}
}

// Size counts mesh members still taking new assignments; a draining
// member is already out of service, so it does not count.
func (p *VSwitchPool) Size() int {
	n := 0
	for _, m := range p.app.MeshMembers() {
		if !p.app.Draining(m) {
			n++
		}
	}
	return n
}

// Grow adds the first standby that the overlay accepts. A recycled
// member whose previous drain has not finished is rotated to the back
// of the list and the next candidate is tried.
func (p *VSwitchPool) Grow() error {
	for tries := len(p.standby); tries > 0; tries-- {
		dpid := p.standby[0]
		if err := p.app.AddVSwitch(dpid, false); err != nil {
			p.standby = append(p.standby[1:], dpid)
			continue
		}
		p.standby = p.standby[1:]
		p.grown = append(p.grown, dpid)
		return nil
	}
	return errors.New("elastic: no standby vswitch available")
}

// Shrink starts draining the most recently grown member and returns it
// to the standby list for future growth.
func (p *VSwitchPool) Shrink() error {
	for i := len(p.grown) - 1; i >= 0; i-- {
		dpid := p.grown[i]
		if err := p.app.DrainVSwitch(dpid); err != nil {
			continue
		}
		p.grown = append(p.grown[:i], p.grown[i+1:]...)
		p.standby = append(p.standby, dpid)
		return nil
	}
	return errors.New("elastic: no grown member can drain")
}

// OverlayRate returns a LoadFunc measuring the overlay-routed flow rate
// per pool member: the increase in app.Stats.OverlayRouted since the
// previous sample, per second, divided by the pool size. This is the
// signal the elastic experiment scales on — it is exactly the work the
// mesh absorbs for the control plane, so it rises with the attack and
// falls when the attack stops or capacity is added.
func OverlayRate(eng sim.Proc, app *scotch.App, pool Pool) LoadFunc {
	var prevCount uint64
	var prevAt sim.Time
	return func() float64 {
		now := eng.Now()
		count := app.Stats.OverlayRouted
		dt := (now - prevAt).Seconds()
		d := count - prevCount
		prevCount = count
		prevAt = now
		if dt <= 0 {
			return 0
		}
		size := pool.Size()
		if size < 1 {
			size = 1
		}
		return float64(d) / dt / float64(size)
	}
}
