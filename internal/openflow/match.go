package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"scotch/internal/netaddr"
)

// OXM header constants (OpenFlow 1.3 §7.2.3.2).
const (
	oxmClassBasic = 0x8000

	oxmInPort    = 0
	oxmEthType   = 5
	oxmIPProto   = 10
	oxmIPv4Src   = 11
	oxmIPv4Dst   = 12
	oxmTCPSrc    = 13
	oxmTCPDst    = 14
	oxmUDPSrc    = 15
	oxmUDPDst    = 16
	oxmMPLSLabel = 34
	oxmTunnelID  = 38
)

// FieldSet is a bitmask of which match fields are present.
type FieldSet uint16

// Field presence bits for Match.Fields.
const (
	FieldInPort FieldSet = 1 << iota
	FieldEthType
	FieldIPProto
	FieldIPv4Src
	FieldIPv4Dst
	FieldTCPSrc
	FieldTCPDst
	FieldUDPSrc
	FieldUDPDst
	FieldMPLSLabel
	FieldTunnelID
)

// Has reports whether all bits in f are present.
func (s FieldSet) Has(f FieldSet) bool { return s&f == f }

// Match is an OpenFlow flow match over the OXM subset the simulator uses.
// A field participates in matching only when its presence bit is set in
// Fields; IPv4 src/dst additionally honor their masks (a zero mask is
// treated as an exact /32 match for convenience).
type Match struct {
	Fields FieldSet

	InPort           uint32
	EthType          uint16
	IPProto          uint8
	IPv4Src, IPv4Dst netaddr.IPv4
	IPv4SrcMask      uint32
	IPv4DstMask      uint32
	TCPSrc, TCPDst   uint16
	UDPSrc, UDPDst   uint16
	MPLSLabel        uint32
	TunnelID         uint64
}

// srcMask returns the effective IPv4 source mask.
func (m *Match) srcMask() uint32 {
	if m.IPv4SrcMask == 0 {
		return 0xffffffff
	}
	return m.IPv4SrcMask
}

// dstMask returns the effective IPv4 destination mask.
func (m *Match) dstMask() uint32 {
	if m.IPv4DstMask == 0 {
		return 0xffffffff
	}
	return m.IPv4DstMask
}

func oxmHeader(b []byte, field uint8, hasMask bool, length uint8) []byte {
	b = binary.BigEndian.AppendUint16(b, oxmClassBasic)
	fb := field << 1
	if hasMask {
		fb |= 1
		length *= 2
	}
	return append(b, fb, length)
}

// marshalOXM appends the match's OXM TLVs (without the ofp_match wrapper).
func (m *Match) marshalOXM(b []byte) []byte {
	if m.Fields.Has(FieldInPort) {
		b = oxmHeader(b, oxmInPort, false, 4)
		b = binary.BigEndian.AppendUint32(b, m.InPort)
	}
	if m.Fields.Has(FieldEthType) {
		b = oxmHeader(b, oxmEthType, false, 2)
		b = binary.BigEndian.AppendUint16(b, m.EthType)
	}
	if m.Fields.Has(FieldIPProto) {
		b = oxmHeader(b, oxmIPProto, false, 1)
		b = append(b, m.IPProto)
	}
	if m.Fields.Has(FieldIPv4Src) {
		masked := m.srcMask() != 0xffffffff
		b = oxmHeader(b, oxmIPv4Src, masked, 4)
		b = binary.BigEndian.AppendUint32(b, uint32(m.IPv4Src))
		if masked {
			b = binary.BigEndian.AppendUint32(b, m.srcMask())
		}
	}
	if m.Fields.Has(FieldIPv4Dst) {
		masked := m.dstMask() != 0xffffffff
		b = oxmHeader(b, oxmIPv4Dst, masked, 4)
		b = binary.BigEndian.AppendUint32(b, uint32(m.IPv4Dst))
		if masked {
			b = binary.BigEndian.AppendUint32(b, m.dstMask())
		}
	}
	if m.Fields.Has(FieldTCPSrc) {
		b = oxmHeader(b, oxmTCPSrc, false, 2)
		b = binary.BigEndian.AppendUint16(b, m.TCPSrc)
	}
	if m.Fields.Has(FieldTCPDst) {
		b = oxmHeader(b, oxmTCPDst, false, 2)
		b = binary.BigEndian.AppendUint16(b, m.TCPDst)
	}
	if m.Fields.Has(FieldUDPSrc) {
		b = oxmHeader(b, oxmUDPSrc, false, 2)
		b = binary.BigEndian.AppendUint16(b, m.UDPSrc)
	}
	if m.Fields.Has(FieldUDPDst) {
		b = oxmHeader(b, oxmUDPDst, false, 2)
		b = binary.BigEndian.AppendUint16(b, m.UDPDst)
	}
	if m.Fields.Has(FieldMPLSLabel) {
		b = oxmHeader(b, oxmMPLSLabel, false, 4)
		b = binary.BigEndian.AppendUint32(b, m.MPLSLabel)
	}
	if m.Fields.Has(FieldTunnelID) {
		b = oxmHeader(b, oxmTunnelID, false, 8)
		b = binary.BigEndian.AppendUint64(b, m.TunnelID)
	}
	return b
}

// Marshal appends the full ofp_match structure (type, length, OXM fields,
// padded to 8 bytes) to b.
func (m *Match) Marshal(b []byte) []byte {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, 1) // OFPMT_OXM
	b = binary.BigEndian.AppendUint16(b, 0) // length placeholder
	b = m.marshalOXM(b)
	binary.BigEndian.PutUint16(b[start+2:], uint16(len(b)-start))
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

// Unmarshal parses an ofp_match from the front of b and returns the bytes
// following the padded structure.
func (m *Match) Unmarshal(b []byte) ([]byte, error) {
	*m = Match{}
	if len(b) < 4 {
		return nil, fmt.Errorf("openflow: match truncated")
	}
	if mt := binary.BigEndian.Uint16(b); mt != 1 {
		return nil, fmt.Errorf("openflow: unsupported match type %d", mt)
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < 4 {
		return nil, fmt.Errorf("openflow: match length %d too small", length)
	}
	padded := (length + 7) / 8 * 8
	if len(b) < padded {
		return nil, fmt.Errorf("openflow: match truncated (%d < %d)", len(b), padded)
	}
	fields := b[4:length]
	for len(fields) > 0 {
		if len(fields) < 4 {
			return nil, fmt.Errorf("openflow: OXM header truncated")
		}
		class := binary.BigEndian.Uint16(fields)
		fb := fields[2]
		l := int(fields[3])
		if len(fields) < 4+l {
			return nil, fmt.Errorf("openflow: OXM value truncated")
		}
		v := fields[4 : 4+l]
		fields = fields[4+l:]
		if class != oxmClassBasic {
			continue // ignore experimenter/unknown classes
		}
		field := fb >> 1
		hasMask := fb&1 != 0
		vl := l
		if hasMask {
			vl = l / 2
		}
		if err := m.setOXM(field, hasMask, v[:vl], v[vl:]); err != nil {
			return nil, err
		}
	}
	return b[padded:], nil
}

func (m *Match) setOXM(field uint8, hasMask bool, v, mask []byte) error {
	bad := func() error {
		return fmt.Errorf("openflow: OXM field %d has bad length %d", field, len(v))
	}
	switch field {
	case oxmInPort:
		if len(v) != 4 {
			return bad()
		}
		m.Fields |= FieldInPort
		m.InPort = binary.BigEndian.Uint32(v)
	case oxmEthType:
		if len(v) != 2 {
			return bad()
		}
		m.Fields |= FieldEthType
		m.EthType = binary.BigEndian.Uint16(v)
	case oxmIPProto:
		if len(v) != 1 {
			return bad()
		}
		m.Fields |= FieldIPProto
		m.IPProto = v[0]
	case oxmIPv4Src:
		if len(v) != 4 {
			return bad()
		}
		m.Fields |= FieldIPv4Src
		m.IPv4Src = netaddr.IPv4(binary.BigEndian.Uint32(v))
		if hasMask {
			m.IPv4SrcMask = binary.BigEndian.Uint32(mask)
		}
	case oxmIPv4Dst:
		if len(v) != 4 {
			return bad()
		}
		m.Fields |= FieldIPv4Dst
		m.IPv4Dst = netaddr.IPv4(binary.BigEndian.Uint32(v))
		if hasMask {
			m.IPv4DstMask = binary.BigEndian.Uint32(mask)
		}
	case oxmTCPSrc:
		if len(v) != 2 {
			return bad()
		}
		m.Fields |= FieldTCPSrc
		m.TCPSrc = binary.BigEndian.Uint16(v)
	case oxmTCPDst:
		if len(v) != 2 {
			return bad()
		}
		m.Fields |= FieldTCPDst
		m.TCPDst = binary.BigEndian.Uint16(v)
	case oxmUDPSrc:
		if len(v) != 2 {
			return bad()
		}
		m.Fields |= FieldUDPSrc
		m.UDPSrc = binary.BigEndian.Uint16(v)
	case oxmUDPDst:
		if len(v) != 2 {
			return bad()
		}
		m.Fields |= FieldUDPDst
		m.UDPDst = binary.BigEndian.Uint16(v)
	case oxmMPLSLabel:
		if len(v) != 4 {
			return bad()
		}
		m.Fields |= FieldMPLSLabel
		m.MPLSLabel = binary.BigEndian.Uint32(v)
	case oxmTunnelID:
		if len(v) != 8 {
			return bad()
		}
		m.Fields |= FieldTunnelID
		m.TunnelID = binary.BigEndian.Uint64(v)
	default:
		// Unknown basic-class fields are ignored for forward compatibility.
	}
	return nil
}

// Equal reports whether two matches select exactly the same packets.
func (m *Match) Equal(o *Match) bool {
	if m.Fields != o.Fields {
		return false
	}
	eq := m.InPort == o.InPort && m.EthType == o.EthType && m.IPProto == o.IPProto &&
		m.TCPSrc == o.TCPSrc && m.TCPDst == o.TCPDst &&
		m.UDPSrc == o.UDPSrc && m.UDPDst == o.UDPDst &&
		m.MPLSLabel == o.MPLSLabel && m.TunnelID == o.TunnelID
	if !eq {
		return false
	}
	if m.Fields.Has(FieldIPv4Src) &&
		(m.srcMask() != o.srcMask() || uint32(m.IPv4Src)&m.srcMask() != uint32(o.IPv4Src)&o.srcMask()) {
		return false
	}
	if m.Fields.Has(FieldIPv4Dst) &&
		(m.dstMask() != o.dstMask() || uint32(m.IPv4Dst)&m.dstMask() != uint32(o.IPv4Dst)&o.dstMask()) {
		return false
	}
	return true
}

// String renders the match compactly for logs.
func (m *Match) String() string {
	if m.Fields == 0 {
		return "any"
	}
	var parts []string
	add := func(f FieldSet, s string) {
		if m.Fields.Has(f) {
			parts = append(parts, s)
		}
	}
	add(FieldInPort, fmt.Sprintf("in_port=%d", m.InPort))
	add(FieldEthType, fmt.Sprintf("eth_type=%#04x", m.EthType))
	add(FieldIPProto, fmt.Sprintf("ip_proto=%d", m.IPProto))
	add(FieldIPv4Src, fmt.Sprintf("ipv4_src=%v/%#08x", m.IPv4Src, m.srcMask()))
	add(FieldIPv4Dst, fmt.Sprintf("ipv4_dst=%v/%#08x", m.IPv4Dst, m.dstMask()))
	add(FieldTCPSrc, fmt.Sprintf("tcp_src=%d", m.TCPSrc))
	add(FieldTCPDst, fmt.Sprintf("tcp_dst=%d", m.TCPDst))
	add(FieldUDPSrc, fmt.Sprintf("udp_src=%d", m.UDPSrc))
	add(FieldUDPDst, fmt.Sprintf("udp_dst=%d", m.UDPDst))
	add(FieldMPLSLabel, fmt.Sprintf("mpls_label=%d", m.MPLSLabel))
	add(FieldTunnelID, fmt.Sprintf("tunnel_id=%d", m.TunnelID))
	return strings.Join(parts, ",")
}
