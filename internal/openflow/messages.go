package openflow

import (
	"encoding/binary"
	"fmt"
)

// Hello opens the handshake.
type Hello struct{}

// Type implements Message.
func (*Hello) Type() MsgType                        { return TypeHello }
func (*Hello) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*Hello) unmarshalBody([]byte) error           { return nil }

// EchoRequest is the liveness probe; Scotch uses it as the vSwitch
// heartbeat (§5.6 of the paper).
type EchoRequest struct{ Data []byte }

// Type implements Message.
func (*EchoRequest) Type() MsgType { return TypeEchoRequest }
func (m *EchoRequest) marshalBody(b []byte) ([]byte, error) {
	return append(b, m.Data...), nil
}
func (m *EchoRequest) unmarshalBody(b []byte) error {
	if len(b) > 0 {
		m.Data = b // alias: the wire buffer is dead once the message is handled
	}
	return nil
}

// EchoReply answers an EchoRequest, echoing its data.
type EchoReply struct{ Data []byte }

// Type implements Message.
func (*EchoReply) Type() MsgType { return TypeEchoReply }
func (m *EchoReply) marshalBody(b []byte) ([]byte, error) {
	return append(b, m.Data...), nil
}
func (m *EchoReply) unmarshalBody(b []byte) error {
	if len(b) > 0 {
		m.Data = b // alias: the wire buffer is dead once the message is handled
	}
	return nil
}

// FeaturesRequest asks a switch for its datapath identity.
type FeaturesRequest struct{}

// Type implements Message.
func (*FeaturesRequest) Type() MsgType                        { return TypeFeaturesRequest }
func (*FeaturesRequest) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*FeaturesRequest) unmarshalBody([]byte) error           { return nil }

// FeaturesReply announces the datapath id and table capacity.
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	AuxiliaryID  uint8
	Capabilities uint32
}

// Type implements Message.
func (*FeaturesReply) Type() MsgType { return TypeFeaturesReply }
func (m *FeaturesReply) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint64(b, m.DatapathID)
	b = binary.BigEndian.AppendUint32(b, m.NBuffers)
	b = append(b, m.NTables, m.AuxiliaryID, 0, 0)
	b = binary.BigEndian.AppendUint32(b, m.Capabilities)
	return binary.BigEndian.AppendUint32(b, 0), nil
}
func (m *FeaturesReply) unmarshalBody(b []byte) error {
	if len(b) < 24 {
		return fmt.Errorf("openflow: features reply truncated")
	}
	m.DatapathID = binary.BigEndian.Uint64(b)
	m.NBuffers = binary.BigEndian.Uint32(b[8:])
	m.NTables = b[12]
	m.AuxiliaryID = b[13]
	m.Capabilities = binary.BigEndian.Uint32(b[16:])
	return nil
}

// Packet-In reasons.
const (
	ReasonNoMatch uint8 = 0 // table miss
	ReasonAction  uint8 = 1 // explicit output to controller
)

// PacketIn punts a packet to the controller. Match carries at least the
// ingress port and, for packets arriving over Scotch tunnels, the tunnel id.
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	Reason   uint8
	TableID  uint8
	Cookie   uint64
	Match    Match
	Data     []byte
}

// matchSizeUB over-estimates a marshaled ofp_match: the OXM TLVs this
// simulator emits (port, tunnel id, ethertype, IPs, proto, L4 ports,
// MPLS label) total well under this, padding included.
const matchSizeUB = 96

// Type implements Message.
func (*PacketIn) Type() MsgType { return TypePacketIn }
func (m *PacketIn) marshalSizeHint() int { return 18 + matchSizeUB + len(m.Data) }
func (m *PacketIn) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.TotalLen)
	b = append(b, m.Reason, m.TableID)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = m.Match.Marshal(b)
	b = append(b, 0, 0)
	return append(b, m.Data...), nil
}
func (m *PacketIn) unmarshalBody(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("openflow: packet-in truncated")
	}
	m.BufferID = binary.BigEndian.Uint32(b)
	m.TotalLen = binary.BigEndian.Uint16(b[4:])
	m.Reason = b[6]
	m.TableID = b[7]
	m.Cookie = binary.BigEndian.Uint64(b[8:])
	rest, err := m.Match.Unmarshal(b[16:])
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return fmt.Errorf("openflow: packet-in pad truncated")
	}
	// Alias rather than copy: the wire buffer's only consumer is this
	// decode, so Data borrowing it is safe and saves a copy per punt.
	m.Data = rest[2:]
	return nil
}

// PacketOut injects a packet from the controller into a switch pipeline.
type PacketOut struct {
	BufferID uint32
	InPort   uint32
	Actions  []Action
	Data     []byte
}

// Type implements Message.
func (*PacketOut) Type() MsgType { return TypePacketOut }
func (m *PacketOut) marshalSizeHint() int { return 16 + 16*len(m.Actions) + len(m.Data) }
func (m *PacketOut) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint32(b, m.InPort)
	lenAt := len(b)
	b = binary.BigEndian.AppendUint16(b, 0) // actions_len placeholder
	b = append(b, 0, 0, 0, 0, 0, 0)
	actStart := len(b)
	b, err := marshalActions(b, m.Actions)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint16(b[lenAt:], uint16(len(b)-actStart))
	return append(b, m.Data...), nil
}
func (m *PacketOut) unmarshalBody(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("openflow: packet-out truncated")
	}
	m.BufferID = binary.BigEndian.Uint32(b)
	m.InPort = binary.BigEndian.Uint32(b[4:])
	alen := int(binary.BigEndian.Uint16(b[8:]))
	if len(b) < 16+alen {
		return fmt.Errorf("openflow: packet-out actions truncated")
	}
	actions, err := unmarshalActions(b[16 : 16+alen])
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = b[16+alen:] // alias: the wire buffer is dead after decode
	return nil
}

// FlowMod commands (OFPFC_*).
const (
	FlowAdd          uint8 = 0
	FlowModify       uint8 = 1
	FlowDelete       uint8 = 3
	FlowDeleteStrict uint8 = 4
)

// FlowMod flags.
const (
	FlagSendFlowRem uint16 = 1 // OFPFF_SEND_FLOW_REM
)

// FlowMod installs, modifies, or removes flow entries.
type FlowMod struct {
	Cookie       uint64
	CookieMask   uint64
	TableID      uint8
	Command      uint8
	IdleTimeout  uint16 // seconds
	HardTimeout  uint16 // seconds
	Priority     uint16
	BufferID     uint32
	OutPort      uint32
	OutGroup     uint32
	Flags        uint16
	Match        Match
	Instructions []Instruction
}

// Type implements Message.
func (*FlowMod) Type() MsgType { return TypeFlowMod }
func (m *FlowMod) marshalSizeHint() int { return 40 + matchSizeUB + 32*len(m.Instructions) + 64 }
func (m *FlowMod) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint64(b, m.CookieMask)
	b = append(b, m.TableID, m.Command)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, m.HardTimeout)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint32(b, m.OutPort)
	b = binary.BigEndian.AppendUint32(b, m.OutGroup)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	b = append(b, 0, 0)
	b = m.Match.Marshal(b)
	return marshalInstructions(b, m.Instructions)
}
func (m *FlowMod) unmarshalBody(b []byte) error {
	if len(b) < 40 {
		return fmt.Errorf("openflow: flow-mod truncated")
	}
	m.Cookie = binary.BigEndian.Uint64(b)
	m.CookieMask = binary.BigEndian.Uint64(b[8:])
	m.TableID = b[16]
	m.Command = b[17]
	m.IdleTimeout = binary.BigEndian.Uint16(b[18:])
	m.HardTimeout = binary.BigEndian.Uint16(b[20:])
	m.Priority = binary.BigEndian.Uint16(b[22:])
	m.BufferID = binary.BigEndian.Uint32(b[24:])
	m.OutPort = binary.BigEndian.Uint32(b[28:])
	m.OutGroup = binary.BigEndian.Uint32(b[32:])
	m.Flags = binary.BigEndian.Uint16(b[36:])
	rest, err := m.Match.Unmarshal(b[40:])
	if err != nil {
		return err
	}
	ins, err := unmarshalInstructions(rest)
	if err != nil {
		return err
	}
	m.Instructions = ins
	return nil
}

// Flow-removed reasons (OFPRR_*).
const (
	RemovedIdleTimeout uint8 = 0
	RemovedHardTimeout uint8 = 1
	RemovedDelete      uint8 = 2
)

// FlowRemoved notifies the controller that a flow entry expired or was
// deleted.
type FlowRemoved struct {
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	TableID      uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	HardTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
	Match        Match
}

// Type implements Message.
func (*FlowRemoved) Type() MsgType { return TypeFlowRemoved }
func (m *FlowRemoved) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = append(b, m.Reason, m.TableID)
	b = binary.BigEndian.AppendUint32(b, m.DurationSec)
	b = binary.BigEndian.AppendUint32(b, m.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, m.HardTimeout)
	b = binary.BigEndian.AppendUint64(b, m.PacketCount)
	b = binary.BigEndian.AppendUint64(b, m.ByteCount)
	return m.Match.Marshal(b), nil
}
func (m *FlowRemoved) unmarshalBody(b []byte) error {
	if len(b) < 40 {
		return fmt.Errorf("openflow: flow-removed truncated")
	}
	m.Cookie = binary.BigEndian.Uint64(b)
	m.Priority = binary.BigEndian.Uint16(b[8:])
	m.Reason = b[10]
	m.TableID = b[11]
	m.DurationSec = binary.BigEndian.Uint32(b[12:])
	m.DurationNsec = binary.BigEndian.Uint32(b[16:])
	m.IdleTimeout = binary.BigEndian.Uint16(b[20:])
	m.HardTimeout = binary.BigEndian.Uint16(b[22:])
	m.PacketCount = binary.BigEndian.Uint64(b[24:])
	m.ByteCount = binary.BigEndian.Uint64(b[32:])
	_, err := m.Match.Unmarshal(b[40:])
	return err
}

// Group commands and types (OFPGC_*, OFPGT_*).
const (
	GroupAdd    uint16 = 0
	GroupModify uint16 = 1
	GroupDelete uint16 = 2

	GroupTypeAll    uint8 = 0
	GroupTypeSelect uint8 = 1
)

// Bucket is one alternative action set within a group.
type Bucket struct {
	Weight     uint16
	WatchPort  uint32
	WatchGroup uint32
	Actions    []Action
}

// GroupMod installs or modifies a group. Scotch uses a select group whose
// buckets each tunnel to one mesh vSwitch (paper §5.1).
type GroupMod struct {
	Command   uint16
	GroupType uint8
	GroupID   uint32
	Buckets   []Bucket
}

// Type implements Message.
func (*GroupMod) Type() MsgType { return TypeGroupMod }
func (m *GroupMod) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, m.Command)
	b = append(b, m.GroupType, 0)
	b = binary.BigEndian.AppendUint32(b, m.GroupID)
	for i := range m.Buckets {
		bk := &m.Buckets[i]
		start := len(b)
		b = binary.BigEndian.AppendUint16(b, 0) // bucket len placeholder
		b = binary.BigEndian.AppendUint16(b, bk.Weight)
		b = binary.BigEndian.AppendUint32(b, bk.WatchPort)
		b = binary.BigEndian.AppendUint32(b, bk.WatchGroup)
		b = append(b, 0, 0, 0, 0)
		var err error
		if b, err = marshalActions(b, bk.Actions); err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint16(b[start:], uint16(len(b)-start))
	}
	return b, nil
}
func (m *GroupMod) unmarshalBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("openflow: group-mod truncated")
	}
	m.Command = binary.BigEndian.Uint16(b)
	m.GroupType = b[2]
	m.GroupID = binary.BigEndian.Uint32(b[4:])
	b = b[8:]
	m.Buckets = nil
	for len(b) > 0 {
		if len(b) < 16 {
			return fmt.Errorf("openflow: bucket truncated")
		}
		blen := int(binary.BigEndian.Uint16(b))
		if blen < 16 || blen > len(b) {
			return fmt.Errorf("openflow: bad bucket length %d", blen)
		}
		var bk Bucket
		bk.Weight = binary.BigEndian.Uint16(b[2:])
		bk.WatchPort = binary.BigEndian.Uint32(b[4:])
		bk.WatchGroup = binary.BigEndian.Uint32(b[8:])
		actions, err := unmarshalActions(b[16:blen])
		if err != nil {
			return err
		}
		bk.Actions = actions
		m.Buckets = append(m.Buckets, bk)
		b = b[blen:]
	}
	return nil
}

// Multipart types (OFPMP_*).
const (
	MultipartFlow uint16 = 1
)

// FlowStatsRequest selects flow entries whose statistics are wanted.
type FlowStatsRequest struct {
	TableID    uint8
	OutPort    uint32
	OutGroup   uint32
	Cookie     uint64
	CookieMask uint64
	Match      Match
}

// MultipartRequest wraps a stats request; only flow stats are supported.
type MultipartRequest struct {
	MPType uint16
	Flow   *FlowStatsRequest
}

// Type implements Message.
func (*MultipartRequest) Type() MsgType { return TypeMultipartRequest }
func (m *MultipartRequest) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, m.MPType)
	b = binary.BigEndian.AppendUint16(b, 0) // flags
	b = append(b, 0, 0, 0, 0)
	if m.MPType != MultipartFlow || m.Flow == nil {
		return nil, fmt.Errorf("openflow: unsupported multipart request type %d", m.MPType)
	}
	f := m.Flow
	b = append(b, f.TableID, 0, 0, 0)
	b = binary.BigEndian.AppendUint32(b, f.OutPort)
	b = binary.BigEndian.AppendUint32(b, f.OutGroup)
	b = append(b, 0, 0, 0, 0)
	b = binary.BigEndian.AppendUint64(b, f.Cookie)
	b = binary.BigEndian.AppendUint64(b, f.CookieMask)
	return f.Match.Marshal(b), nil
}
func (m *MultipartRequest) unmarshalBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("openflow: multipart request truncated")
	}
	m.MPType = binary.BigEndian.Uint16(b)
	if m.MPType != MultipartFlow {
		return fmt.Errorf("openflow: unsupported multipart request type %d", m.MPType)
	}
	b = b[8:]
	if len(b) < 32 {
		return fmt.Errorf("openflow: flow stats request truncated")
	}
	f := &FlowStatsRequest{}
	f.TableID = b[0]
	f.OutPort = binary.BigEndian.Uint32(b[4:])
	f.OutGroup = binary.BigEndian.Uint32(b[8:])
	f.Cookie = binary.BigEndian.Uint64(b[16:])
	f.CookieMask = binary.BigEndian.Uint64(b[24:])
	if _, err := f.Match.Unmarshal(b[32:]); err != nil {
		return err
	}
	m.Flow = f
	return nil
}

// FlowStats is one flow entry's statistics.
type FlowStats struct {
	TableID      uint8
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Match        Match
}

// MultipartReply carries flow statistics entries. More indicates that
// further reply parts with the same transaction id follow
// (OFPMPF_REPLY_MORE); switches chunk large tables across parts.
type MultipartReply struct {
	MPType uint16
	More   bool
	Flows  []FlowStats
}

// Type implements Message.
func (*MultipartReply) Type() MsgType { return TypeMultipartReply }
func (m *MultipartReply) marshalSizeHint() int { return 8 + len(m.Flows)*(48+matchSizeUB) }
func (m *MultipartReply) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, m.MPType)
	var flags uint16
	if m.More {
		flags = 1 // OFPMPF_REPLY_MORE
	}
	b = binary.BigEndian.AppendUint16(b, flags)
	b = append(b, 0, 0, 0, 0)
	if m.MPType != MultipartFlow {
		return nil, fmt.Errorf("openflow: unsupported multipart reply type %d", m.MPType)
	}
	for i := range m.Flows {
		f := &m.Flows[i]
		start := len(b)
		b = binary.BigEndian.AppendUint16(b, 0) // entry length placeholder
		b = append(b, f.TableID, 0)
		b = binary.BigEndian.AppendUint32(b, f.DurationSec)
		b = binary.BigEndian.AppendUint32(b, f.DurationNsec)
		b = binary.BigEndian.AppendUint16(b, f.Priority)
		b = binary.BigEndian.AppendUint16(b, f.IdleTimeout)
		b = binary.BigEndian.AppendUint16(b, f.HardTimeout)
		b = append(b, 0, 0, 0, 0, 0, 0)
		b = binary.BigEndian.AppendUint64(b, f.Cookie)
		b = binary.BigEndian.AppendUint64(b, f.PacketCount)
		b = binary.BigEndian.AppendUint64(b, f.ByteCount)
		b = f.Match.Marshal(b)
		binary.BigEndian.PutUint16(b[start:], uint16(len(b)-start))
	}
	return b, nil
}
func (m *MultipartReply) unmarshalBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("openflow: multipart reply truncated")
	}
	m.MPType = binary.BigEndian.Uint16(b)
	if m.MPType != MultipartFlow {
		return fmt.Errorf("openflow: unsupported multipart reply type %d", m.MPType)
	}
	m.More = binary.BigEndian.Uint16(b[2:])&1 != 0
	b = b[8:]
	m.Flows = nil
	for len(b) > 0 {
		if len(b) < 48 {
			return fmt.Errorf("openflow: flow stats entry truncated")
		}
		elen := int(binary.BigEndian.Uint16(b))
		if elen < 48 || elen > len(b) {
			return fmt.Errorf("openflow: bad flow stats length %d", elen)
		}
		var f FlowStats
		f.TableID = b[2]
		f.DurationSec = binary.BigEndian.Uint32(b[4:])
		f.DurationNsec = binary.BigEndian.Uint32(b[8:])
		f.Priority = binary.BigEndian.Uint16(b[12:])
		f.IdleTimeout = binary.BigEndian.Uint16(b[14:])
		f.HardTimeout = binary.BigEndian.Uint16(b[16:])
		f.Cookie = binary.BigEndian.Uint64(b[24:])
		f.PacketCount = binary.BigEndian.Uint64(b[32:])
		f.ByteCount = binary.BigEndian.Uint64(b[40:])
		if _, err := f.Match.Unmarshal(b[48:elen]); err != nil {
			return err
		}
		m.Flows = append(m.Flows, f)
		b = b[elen:]
	}
	return nil
}

// Error codes used by the simulated switches.
const (
	ErrTypeBadRequest     uint16 = 1
	ErrCodeIsSlave        uint16 = 10 // OFPBRC_IS_SLAVE: write from a slave connection
	ErrTypeFlowModFailed  uint16 = 5
	ErrCodeTableFull      uint16 = 1
	ErrTypeGroupModFailed uint16 = 6
	// OFPET_ROLE_REQUEST_FAILED: the generation id of a master/slave claim
	// was older than the newest the switch has seen (fenced-off controller).
	ErrTypeRoleRequestFailed uint16 = 11
	ErrCodeRoleStale         uint16 = 0
)

// Error reports a failed request back to the controller.
type Error struct {
	ErrType uint16
	Code    uint16
	Data    []byte // prefix of the offending message
}

// Type implements Message.
func (*Error) Type() MsgType { return TypeError }
func (m *Error) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, m.ErrType)
	b = binary.BigEndian.AppendUint16(b, m.Code)
	return append(b, m.Data...), nil
}
func (m *Error) unmarshalBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("openflow: error message truncated")
	}
	m.ErrType = binary.BigEndian.Uint16(b)
	m.Code = binary.BigEndian.Uint16(b[2:])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

// Error implements the error interface so switch errors can be returned
// directly.
func (m *Error) Error() string {
	return fmt.Sprintf("openflow: error type=%d code=%d", m.ErrType, m.Code)
}

// BarrierRequest asks the switch to finish all preceding messages before
// answering; the controller uses it to order rule installation across
// switches during elephant-flow migration.
type BarrierRequest struct{}

// Type implements Message.
func (*BarrierRequest) Type() MsgType                        { return TypeBarrierRequest }
func (*BarrierRequest) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*BarrierRequest) unmarshalBody([]byte) error           { return nil }

// BarrierReply answers a BarrierRequest.
type BarrierReply struct{}

// Type implements Message.
func (*BarrierReply) Type() MsgType                        { return TypeBarrierReply }
func (*BarrierReply) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*BarrierReply) unmarshalBody([]byte) error           { return nil }
