package openflow

import (
	"encoding/binary"
	"fmt"
)

// Controller roles (OFPCR_*). A switch with several controller connections
// delivers asynchronous messages (Packet-In, Flow-Removed) only to its
// master and equal controllers, and rejects state-changing requests from
// slaves. Exactly one connection can be master: a successful master claim
// demotes the previous master to slave (OpenFlow 1.3 §6.3).
const (
	RoleNoChange uint32 = 0 // query the current role
	RoleEqual    uint32 = 1 // full access, receives asynchronous messages
	RoleMaster   uint32 = 2 // full access, sole master
	RoleSlave    uint32 = 3 // read-only, no asynchronous messages
)

// RoleName returns a short human-readable role name.
func RoleName(role uint32) string {
	switch role {
	case RoleNoChange:
		return "nochange"
	case RoleEqual:
		return "equal"
	case RoleMaster:
		return "master"
	case RoleSlave:
		return "slave"
	}
	return fmt.Sprintf("role(%d)", role)
}

// RoleRequest asks the switch to change (or report) this connection's
// role. GenerationID is a monotonically increasing master-election epoch:
// the switch rejects master/slave requests whose generation is older than
// the newest it has seen, which fences stale controllers during failover.
type RoleRequest struct {
	Role         uint32
	GenerationID uint64
}

// Type implements Message.
func (*RoleRequest) Type() MsgType { return TypeRoleRequest }
func (m *RoleRequest) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, m.Role)
	b = append(b, 0, 0, 0, 0)
	return binary.BigEndian.AppendUint64(b, m.GenerationID), nil
}
func (m *RoleRequest) unmarshalBody(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("openflow: role request truncated")
	}
	m.Role = binary.BigEndian.Uint32(b)
	m.GenerationID = binary.BigEndian.Uint64(b[8:])
	return nil
}

// RoleReply reports the connection's role after a RoleRequest.
type RoleReply struct {
	Role         uint32
	GenerationID uint64
}

// Type implements Message.
func (*RoleReply) Type() MsgType { return TypeRoleReply }
func (m *RoleReply) marshalBody(b []byte) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, m.Role)
	b = append(b, 0, 0, 0, 0)
	return binary.BigEndian.AppendUint64(b, m.GenerationID), nil
}
func (m *RoleReply) unmarshalBody(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("openflow: role reply truncated")
	}
	m.Role = binary.BigEndian.Uint32(b)
	m.GenerationID = binary.BigEndian.Uint64(b[8:])
	return nil
}
