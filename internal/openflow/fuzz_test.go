package openflow

import (
	"bytes"
	"testing"
)

// FuzzMessageRoundTrip drives Unmarshal with arbitrary frames, seeded from
// one valid encoding of every message type. The properties:
//
//  1. Unmarshal never panics (the fuzz engine catches panics itself).
//  2. Anything that decodes must re-encode successfully.
//  3. Re-encoding is a fixpoint: decode(encode(m)) encodes to the same
//     bytes (the codec is canonical for decoded values, even when the
//     original input was non-canonical — unknown OXM fields, trailing
//     slack after the declared length, redundant masks).
func FuzzMessageRoundTrip(f *testing.F) {
	for _, wire := range corpus(f) {
		f.Add(wire)
	}
	// A few deliberately hostile shapes beyond the valid corpus.
	f.Add([]byte{Version, byte(TypeFlowMod), 0, 8, 0, 0, 0, 1})
	f.Add([]byte{Version, byte(TypePacketIn), 0xff, 0xff, 0, 0, 0, 0})
	// Truncated role request: header promises a body it does not carry.
	f.Add([]byte{Version, byte(TypeRoleRequest), 0, 12, 0, 0, 0, 2, 0, 0, 0, 2})
	// Role reply with an out-of-range role and a max generation id.
	f.Add([]byte{Version, byte(TypeRoleReply), 0, 24, 0, 0, 0, 3,
		0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, xid, err := Unmarshal(data)
		if err != nil {
			return
		}
		first, err := Marshal(m, xid)
		if err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", m.Type(), err)
		}
		m2, xid2, err := Unmarshal(first)
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v\n% x", m.Type(), err, first)
		}
		if xid2 != xid {
			t.Fatalf("xid changed across round trip: %d -> %d", xid, xid2)
		}
		second, err := Marshal(m2, xid2)
		if err != nil {
			t.Fatalf("second re-encode of %s failed: %v", m.Type(), err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s encoding is not a fixpoint:\n% x\n% x", m.Type(), first, second)
		}
	})
}

// FuzzMatchRoundTrip drives Match.Unmarshal with arbitrary ofp_match bytes,
// seeded with the sample and empty matches. Decoded matches must re-encode
// canonically and select the same packets (Equal) after a second decode.
func FuzzMatchRoundTrip(f *testing.F) {
	sample := sampleMatch()
	f.Add(sample.Marshal(nil))
	f.Add((&Match{}).Marshal(nil))
	masked := Match{Fields: FieldIPv4Src | FieldIPv4Dst, IPv4Src: 0x0a000001,
		IPv4SrcMask: 0xffffff00, IPv4Dst: 0x0a000102}
	f.Add(masked.Marshal(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Match
		if _, err := m.Unmarshal(data); err != nil {
			return
		}
		first := m.Marshal(nil)
		var m2 Match
		rest, err := m2.Unmarshal(first)
		if err != nil {
			t.Fatalf("re-encoded match does not decode: %v\n% x", err, first)
		}
		if len(rest) != 0 {
			t.Fatalf("re-encoded match left %d trailing bytes", len(rest))
		}
		if !m.Equal(&m2) || !m2.Equal(&m) {
			t.Fatalf("match changed across round trip:\n%v\n%v", m.String(), m2.String())
		}
		second := m2.Marshal(nil)
		if !bytes.Equal(first, second) {
			t.Fatalf("match encoding is not a fixpoint:\n% x\n% x", first, second)
		}
	})
}
