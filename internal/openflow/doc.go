// Package openflow implements the subset of the OpenFlow 1.3 wire
// protocol that Scotch requires: the handshake (Hello/Features),
// keepalive (Echo, which §5.4 uses for vSwitch liveness), reactive
// forwarding (Packet-In/Packet-Out/Flow-Mod/Flow-Removed), select groups
// (Group-Mod) for load balancing across the vSwitch mesh (§5.1),
// master/slave roles with generation-ID fencing (OF 1.3 §6.3), and flow
// statistics (Multipart) for elephant-flow detection (§5.3).
//
// Every control message exchanged in the simulator — and over real TCP in
// package ofnet — is encoded and decoded through this package, so the
// codec is exercised on every simulated control-plane interaction.
package openflow
