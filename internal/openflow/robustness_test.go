package openflow

import (
	"math/rand"
	"testing"
)

// corpus returns one valid encoding of every message type.
func corpus(t testing.TB) [][]byte {
	t.Helper()
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("abcdef")},
		&EchoReply{Data: []byte("ghi")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 1, NTables: 4},
		&PacketIn{BufferID: 1, Match: sampleMatch(), Data: make([]byte, 64)},
		&PacketOut{InPort: 1, Actions: []Action{OutputAction(2), SetTunnelAction(9)}, Data: []byte{1}},
		&FlowMod{Command: FlowAdd, Priority: 7, Match: sampleMatch(),
			Instructions: []Instruction{ApplyActions(PushMPLSAction(3), OutputAction(1)), GotoTable(1)}},
		&FlowRemoved{Match: sampleMatch(), PacketCount: 3},
		&GroupMod{Command: GroupAdd, GroupType: GroupTypeSelect, GroupID: 2,
			Buckets: []Bucket{{Actions: []Action{OutputAction(1)}}, {Actions: []Action{OutputAction(2)}}}},
		&MultipartRequest{MPType: MultipartFlow, Flow: &FlowStatsRequest{TableID: 0xff}},
		&MultipartReply{MPType: MultipartFlow, Flows: []FlowStats{{Match: sampleMatch(), ByteCount: 9}}},
		&Error{ErrType: 1, Code: 2, Data: []byte{3}},
		&BarrierRequest{},
		&BarrierReply{},
		&RoleRequest{Role: RoleMaster, GenerationID: 7},
		&RoleReply{Role: RoleSlave, GenerationID: 8},
	}
	var out [][]byte
	for _, m := range msgs {
		b, err := Marshal(m, 42)
		if err != nil {
			t.Fatalf("marshal %T: %v", m, err)
		}
		out = append(out, b)
	}
	return out
}

// TestUnmarshalNeverPanicsOnMutation flips random bytes in valid messages:
// decoding must fail gracefully or succeed, never panic or over-read.
func TestUnmarshalNeverPanicsOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, wire := range corpus(t) {
		for trial := 0; trial < 500; trial++ {
			b := append([]byte(nil), wire...)
			flips := 1 + rng.Intn(4)
			for i := 0; i < flips; i++ {
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
			// Must not panic; error or success are both acceptable.
			Unmarshal(b)
		}
	}
}

// TestUnmarshalNeverPanicsOnTruncation decodes every prefix of every
// corpus message.
func TestUnmarshalNeverPanicsOnTruncation(t *testing.T) {
	for _, wire := range corpus(t) {
		for n := 0; n <= len(wire); n++ {
			Unmarshal(wire[:n])
		}
	}
}

// TestUnmarshalRandomGarbage feeds arbitrary bytes with a plausible header.
func TestUnmarshalRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		n := 8 + rng.Intn(120)
		b := make([]byte, n)
		rng.Read(b)
		b[0] = Version
		b[1] = byte(rng.Intn(26))
		b[2] = byte(n >> 8)
		b[3] = byte(n)
		Unmarshal(b)
	}
}

// TestReEncodeStability: decode(encode(m)) re-encodes to identical bytes —
// the codec is canonical.
func TestReEncodeStability(t *testing.T) {
	for i, wire := range corpus(t) {
		m, xid, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		again, err := Marshal(m, xid)
		if err != nil {
			t.Fatalf("re-marshal corpus %d: %v", i, err)
		}
		if string(again) != string(wire) {
			t.Errorf("corpus %d not canonical:\n %x\n %x", i, wire, again)
		}
	}
}

// TestMatchSubsetIgnoresUnknownOXM: an unknown basic-class OXM field is
// skipped for forward compatibility rather than failing the whole match.
func TestMatchSubsetIgnoresUnknownOXM(t *testing.T) {
	m := Match{Fields: FieldInPort, InPort: 3}
	wire := m.Marshal(nil)
	// Append an unknown field (id 60, 2-byte value) inside the match
	// region by rebuilding: header says OXM length includes it.
	raw := m.marshalOXM(nil)
	raw = oxmHeader(raw, 60, false, 2)
	raw = append(raw, 0xaa, 0xbb)
	full := make([]byte, 0, 4+len(raw)+8)
	full = append(full, 0, 1, 0, byte(4+len(raw)))
	full = append(full, raw...)
	for len(full)%8 != 0 {
		full = append(full, 0)
	}
	var back Match
	if _, err := back.Unmarshal(full); err != nil {
		t.Fatalf("unknown OXM rejected: %v", err)
	}
	if !back.Fields.Has(FieldInPort) || back.InPort != 3 {
		t.Fatalf("known field lost: %+v", back)
	}
	_ = wire
}
