package openflow_test

import (
	"fmt"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
)

// Encoding and decoding a FlowMod through the binary OpenFlow 1.3 codec.
func ExampleMarshal() {
	fm := &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Priority:    100,
		IdleTimeout: 10,
		Match: openflow.Match{
			Fields:  openflow.FieldEthType | openflow.FieldIPv4Dst,
			EthType: 0x0800,
			IPv4Dst: netaddr.MustParseIPv4("10.0.1.1"),
		},
		Instructions: []openflow.Instruction{
			openflow.ApplyActions(openflow.OutputAction(2)),
		},
	}
	wire, err := openflow.Marshal(fm, 7)
	if err != nil {
		panic(err)
	}
	msg, xid, err := openflow.Unmarshal(wire)
	if err != nil {
		panic(err)
	}
	back := msg.(*openflow.FlowMod)
	fmt.Println(msg.Type(), "xid", xid, "match:", back.Match.String())
	// Output: FLOW_MOD xid 7 match: eth_type=0x0800,ipv4_dst=10.0.1.1/0xffffffff
}
