package openflow

import "testing"

func TestRoleRequestRoundTrip(t *testing.T) {
	for _, role := range []uint32{RoleNoChange, RoleEqual, RoleMaster, RoleSlave} {
		m := &RoleRequest{Role: role, GenerationID: 0xdeadbeefcafe0000 + uint64(role)}
		b, err := Marshal(m, 99)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, xid, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if xid != 99 {
			t.Fatalf("xid = %d, want 99", xid)
		}
		rr, ok := got.(*RoleRequest)
		if !ok {
			t.Fatalf("decoded %T, want *RoleRequest", got)
		}
		if rr.Role != m.Role || rr.GenerationID != m.GenerationID {
			t.Fatalf("round trip changed message: %+v -> %+v", m, rr)
		}
	}
}

func TestRoleReplyRoundTrip(t *testing.T) {
	m := &RoleReply{Role: RoleMaster, GenerationID: 41}
	b, err := Marshal(m, 7)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, _, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	rr, ok := got.(*RoleReply)
	if !ok {
		t.Fatalf("decoded %T, want *RoleReply", got)
	}
	if rr.Role != m.Role || rr.GenerationID != m.GenerationID {
		t.Fatalf("round trip changed message: %+v -> %+v", m, rr)
	}
}

func TestRoleRequestTruncated(t *testing.T) {
	b, err := Marshal(&RoleRequest{Role: RoleMaster, GenerationID: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shorten the body but keep the header length honest: must error, not
	// panic or mis-decode.
	short := append([]byte(nil), b[:headerLen+8]...)
	short[2] = 0
	short[3] = byte(len(short))
	if _, _, err := Unmarshal(short); err == nil {
		t.Fatal("truncated role request decoded without error")
	}
}

func TestRoleNameCoversAllRoles(t *testing.T) {
	for role, want := range map[uint32]string{
		RoleNoChange: "nochange",
		RoleEqual:    "equal",
		RoleMaster:   "master",
		RoleSlave:    "slave",
		99:           "role(99)",
	} {
		if got := RoleName(role); got != want {
			t.Errorf("RoleName(%d) = %q, want %q", role, got, want)
		}
	}
}
