package openflow

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"scotch/internal/netaddr"
)

func roundTrip(t *testing.T, m Message, xid uint32) Message {
	t.Helper()
	b, err := Marshal(m, xid)
	if err != nil {
		t.Fatalf("Marshal(%T): %v", m, err)
	}
	if len(b)%8 != 0 && m.Type() != TypeEchoRequest && m.Type() != TypeEchoReply &&
		m.Type() != TypePacketIn && m.Type() != TypePacketOut && m.Type() != TypeError {
		// Fixed-layout messages must be 8-byte aligned on the wire.
		t.Errorf("%T marshals to %d bytes (not 8-aligned)", m, len(b))
	}
	back, gotXID, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%T): %v", m, err)
	}
	if gotXID != xid {
		t.Errorf("xid = %d, want %d", gotXID, xid)
	}
	if back.Type() != m.Type() {
		t.Errorf("type = %v, want %v", back.Type(), m.Type())
	}
	return back
}

func sampleMatch() Match {
	return Match{
		Fields:  FieldInPort | FieldEthType | FieldIPProto | FieldIPv4Src | FieldIPv4Dst | FieldTCPSrc | FieldTCPDst,
		InPort:  3,
		EthType: 0x0800,
		IPProto: netaddr.ProtoTCP,
		IPv4Src: netaddr.MakeIPv4(10, 0, 0, 1),
		IPv4Dst: netaddr.MakeIPv4(10, 0, 1, 9),
		TCPSrc:  4242,
		TCPDst:  80,
	}
}

func TestHelloEchoRoundTrip(t *testing.T) {
	roundTrip(t, &Hello{}, 1)
	er := roundTrip(t, &EchoRequest{Data: []byte("ping")}, 2).(*EchoRequest)
	if string(er.Data) != "ping" {
		t.Errorf("echo data = %q", er.Data)
	}
	ep := roundTrip(t, &EchoReply{Data: []byte("pong")}, 3).(*EchoReply)
	if string(ep.Data) != "pong" {
		t.Errorf("echo reply data = %q", ep.Data)
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	roundTrip(t, &FeaturesRequest{}, 4)
	fr := &FeaturesReply{DatapathID: 0xdeadbeefcafe, NBuffers: 256, NTables: 4, Capabilities: 0x4f}
	back := roundTrip(t, fr, 5).(*FeaturesReply)
	if !reflect.DeepEqual(back, fr) {
		t.Errorf("features reply = %+v, want %+v", back, fr)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	m := &PacketIn{
		BufferID: 0xffffffff,
		TotalLen: 60,
		Reason:   ReasonNoMatch,
		TableID:  1,
		Cookie:   77,
		Match: Match{
			Fields:   FieldInPort | FieldTunnelID,
			InPort:   9,
			TunnelID: 1234567890123,
		},
		Data: []byte{1, 2, 3, 4, 5},
	}
	back := roundTrip(t, m, 6).(*PacketIn)
	if !reflect.DeepEqual(back, m) {
		t.Errorf("packet-in = %+v, want %+v", back, m)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	m := &PacketOut{
		BufferID: 0xffffffff,
		InPort:   PortController,
		Actions:  []Action{SetTunnelAction(42), OutputAction(7)},
		Data:     []byte("payload"),
	}
	back := roundTrip(t, m, 7).(*PacketOut)
	if !reflect.DeepEqual(back, m) {
		t.Errorf("packet-out = %+v, want %+v", back, m)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := &FlowMod{
		Cookie:      99,
		TableID:     1,
		Command:     FlowAdd,
		IdleTimeout: 10,
		HardTimeout: 300,
		Priority:    1000,
		BufferID:    0xffffffff,
		OutPort:     PortAny,
		OutGroup:    0xffffffff,
		Flags:       FlagSendFlowRem,
		Match:       sampleMatch(),
		Instructions: []Instruction{
			ApplyActions(PushMPLSAction(17), SetTunnelAction(5), OutputAction(2)),
			GotoTable(2),
		},
	}
	back := roundTrip(t, m, 8).(*FlowMod)
	if !reflect.DeepEqual(back, m) {
		t.Errorf("flow-mod:\n got %+v\nwant %+v", back, m)
	}
}

func TestFlowModMaskedMatch(t *testing.T) {
	m := &FlowMod{
		Command:  FlowAdd,
		Priority: 1,
		Match: Match{
			Fields:      FieldIPv4Dst,
			IPv4Dst:     netaddr.MakeIPv4(10, 1, 0, 0),
			IPv4DstMask: 0xffff0000,
		},
		Instructions: []Instruction{ApplyActions(ControllerAction())},
	}
	back := roundTrip(t, m, 9).(*FlowMod)
	if back.Match.IPv4DstMask != 0xffff0000 {
		t.Errorf("mask = %#x, want 0xffff0000", back.Match.IPv4DstMask)
	}
	if !back.Match.Equal(&m.Match) {
		t.Error("masked matches not Equal after round trip")
	}
}

func TestGroupModRoundTrip(t *testing.T) {
	m := &GroupMod{
		Command:   GroupAdd,
		GroupType: GroupTypeSelect,
		GroupID:   1,
		Buckets: []Bucket{
			{Weight: 1, WatchPort: PortAny, WatchGroup: 0xffffffff,
				Actions: []Action{SetTunnelAction(101), OutputAction(11)}},
			{Weight: 1, WatchPort: PortAny, WatchGroup: 0xffffffff,
				Actions: []Action{SetTunnelAction(102), OutputAction(12)}},
			{Weight: 2, WatchPort: PortAny, WatchGroup: 0xffffffff,
				Actions: []Action{SetTunnelAction(103), OutputAction(13)}},
		},
	}
	back := roundTrip(t, m, 10).(*GroupMod)
	if !reflect.DeepEqual(back, m) {
		t.Errorf("group-mod:\n got %+v\nwant %+v", back, m)
	}
}

func TestFlowStatsRoundTrip(t *testing.T) {
	req := &MultipartRequest{
		MPType: MultipartFlow,
		Flow: &FlowStatsRequest{
			TableID:  0xff,
			OutPort:  PortAny,
			OutGroup: 0xffffffff,
			Match:    Match{Fields: FieldEthType, EthType: 0x0800},
		},
	}
	backReq := roundTrip(t, req, 11).(*MultipartRequest)
	if !reflect.DeepEqual(backReq, req) {
		t.Errorf("stats request = %+v, want %+v", backReq, req)
	}

	rep := &MultipartReply{
		MPType: MultipartFlow,
		Flows: []FlowStats{
			{TableID: 0, DurationSec: 12, Priority: 100, Cookie: 5,
				PacketCount: 1000, ByteCount: 1500000, Match: sampleMatch()},
			{TableID: 1, DurationSec: 2, Priority: 1, PacketCount: 3,
				ByteCount: 180, Match: Match{Fields: FieldInPort, InPort: 2}},
		},
	}
	backRep := roundTrip(t, rep, 12).(*MultipartReply)
	if !reflect.DeepEqual(backRep, rep) {
		t.Errorf("stats reply:\n got %+v\nwant %+v", backRep, rep)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	m := &FlowRemoved{
		Cookie: 3, Priority: 10, Reason: RemovedIdleTimeout, TableID: 1,
		DurationSec: 30, IdleTimeout: 10, PacketCount: 42, ByteCount: 4200,
		Match: sampleMatch(),
	}
	back := roundTrip(t, m, 13).(*FlowRemoved)
	if !reflect.DeepEqual(back, m) {
		t.Errorf("flow-removed = %+v, want %+v", back, m)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	m := &Error{ErrType: ErrTypeFlowModFailed, Code: ErrCodeTableFull, Data: []byte{9, 9}}
	back := roundTrip(t, m, 14).(*Error)
	if !reflect.DeepEqual(back, m) {
		t.Errorf("error = %+v, want %+v", back, m)
	}
	if back.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	roundTrip(t, &BarrierRequest{}, 15)
	roundTrip(t, &BarrierReply{}, 16)
}

func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("x")},
		&FlowMod{Command: FlowAdd, Priority: 5, Match: sampleMatch(),
			Instructions: []Instruction{ApplyActions(OutputAction(1))}},
		&PacketIn{BufferID: 1, Match: Match{Fields: FieldInPort, InPort: 4}, Data: []byte("d")},
	}
	for i, m := range msgs {
		if err := WriteMessage(&buf, m, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		m, xid, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage %d: %v", i, err)
		}
		if xid != uint32(i) || m.Type() != want.Type() {
			t.Fatalf("message %d: type %v xid %d", i, m.Type(), xid)
		}
	}
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("ReadMessage on empty stream succeeded")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Marshal(&FlowMod{Command: FlowAdd, Match: sampleMatch(),
		Instructions: []Instruction{ApplyActions(OutputAction(1))}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, _, err := Unmarshal(good[:n]); err == nil {
			t.Errorf("Unmarshal of %d-byte prefix succeeded", n)
		}
	}
	// Wrong version.
	bad := append([]byte(nil), good...)
	bad[0] = 0x01
	if _, _, err := Unmarshal(bad); err == nil {
		t.Error("Unmarshal accepted version 0x01")
	}
	// Unknown type.
	bad2 := append([]byte(nil), good...)
	bad2[1] = 200
	if _, _, err := Unmarshal(bad2); err == nil {
		t.Error("Unmarshal accepted unknown message type")
	}
}

func TestMatchPropertyRoundTrip(t *testing.T) {
	f := func(inPort uint32, ethType uint16, proto uint8, src, dst uint32,
		tcpSrc, tcpDst uint16, label uint32, tun uint64, present uint16) bool {
		m := Match{
			Fields:    FieldSet(present) & (FieldInPort | FieldEthType | FieldIPProto | FieldIPv4Src | FieldIPv4Dst | FieldTCPSrc | FieldTCPDst | FieldMPLSLabel | FieldTunnelID),
			InPort:    inPort,
			EthType:   ethType,
			IPProto:   proto,
			IPv4Src:   netaddr.IPv4(src),
			IPv4Dst:   netaddr.IPv4(dst),
			TCPSrc:    tcpSrc,
			TCPDst:    tcpDst,
			MPLSLabel: label & 0xfffff,
			TunnelID:  tun,
		}
		// Zero out values for absent fields, since Unmarshal leaves them zero.
		if !m.Fields.Has(FieldInPort) {
			m.InPort = 0
		}
		if !m.Fields.Has(FieldEthType) {
			m.EthType = 0
		}
		if !m.Fields.Has(FieldIPProto) {
			m.IPProto = 0
		}
		if !m.Fields.Has(FieldIPv4Src) {
			m.IPv4Src = 0
		}
		if !m.Fields.Has(FieldIPv4Dst) {
			m.IPv4Dst = 0
		}
		if !m.Fields.Has(FieldTCPSrc) {
			m.TCPSrc = 0
		}
		if !m.Fields.Has(FieldTCPDst) {
			m.TCPDst = 0
		}
		if !m.Fields.Has(FieldMPLSLabel) {
			m.MPLSLabel = 0
		}
		if !m.Fields.Has(FieldTunnelID) {
			m.TunnelID = 0
		}
		wire := m.Marshal(nil)
		if len(wire)%8 != 0 {
			return false
		}
		var back Match
		rest, err := back.Unmarshal(wire)
		return err == nil && len(rest) == 0 && reflect.DeepEqual(back, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchString(t *testing.T) {
	var empty Match
	if empty.String() != "any" {
		t.Errorf("empty match String = %q", empty.String())
	}
	m := sampleMatch()
	if m.String() == "" || m.String() == "any" {
		t.Errorf("match String = %q", m.String())
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypePacketIn.String() != "PACKET_IN" {
		t.Errorf("PacketIn String = %q", TypePacketIn.String())
	}
	if MsgType(99).String() != "OFPT(99)" {
		t.Errorf("unknown type String = %q", MsgType(99).String())
	}
}

func BenchmarkFlowModRoundTrip(b *testing.B) {
	m := &FlowMod{
		Command: FlowAdd, Priority: 1000, Match: sampleMatch(),
		Instructions: []Instruction{ApplyActions(SetTunnelAction(3), OutputAction(2))},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := Marshal(m, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketInMarshal(b *testing.B) {
	m := &PacketIn{
		BufferID: 0xffffffff, Reason: ReasonNoMatch,
		Match: Match{Fields: FieldInPort | FieldTunnelID, InPort: 3, TunnelID: 8},
		Data:  bytes.Repeat([]byte{0xaa}, 128),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}
