package openflow

import (
	"encoding/binary"
	"fmt"
)

// Action type codes (OFPAT_*).
const (
	ActionTypeOutput   uint16 = 0
	ActionTypePushMPLS uint16 = 19
	ActionTypePopMPLS  uint16 = 20
	ActionTypeGroup    uint16 = 22
	ActionTypeSetField uint16 = 25
)

// Reserved port numbers (OFPP_*).
const (
	PortController uint32 = 0xfffffffd
	PortAny        uint32 = 0xffffffff
	// ControllerMaxLen asks the switch to send the full packet in
	// Packet-In messages (OFPCML_NO_BUFFER); Scotch configures vSwitches
	// this way so the controller can forward the first packet itself.
	ControllerMaxLen uint16 = 0xffff
)

// Action is one OpenFlow action. Exactly the subset Scotch needs is
// supported: output (physical port, tunnel port, or controller), group,
// MPLS push/pop, and set-field (MPLS label or tunnel id).
type Action struct {
	Type uint16

	Port   uint32 // Output: destination port
	MaxLen uint16 // Output to controller: bytes to include

	GroupID uint32 // Group

	EtherType uint16 // PushMPLS/PopMPLS

	// SetField: exactly one of the following is used, selected by Field.
	Field     uint8 // oxmMPLSLabel or oxmTunnelID
	MPLSLabel uint32
	TunnelID  uint64
}

// OutputAction returns an action forwarding to a switch port.
func OutputAction(port uint32) Action { return Action{Type: ActionTypeOutput, Port: port} }

// ControllerAction returns an output action that punts to the controller.
func ControllerAction() Action {
	return Action{Type: ActionTypeOutput, Port: PortController, MaxLen: ControllerMaxLen}
}

// GroupAction returns an action handing the packet to a group.
func GroupAction(id uint32) Action { return Action{Type: ActionTypeGroup, GroupID: id} }

// PushMPLSAction returns a push_mpls followed logically by set_field; the
// simulator folds the label into the push for brevity.
func PushMPLSAction(label uint32) Action {
	return Action{Type: ActionTypePushMPLS, EtherType: 0x8847, Field: oxmMPLSLabel, MPLSLabel: label}
}

// PopMPLSAction returns a pop_mpls action.
func PopMPLSAction() Action { return Action{Type: ActionTypePopMPLS, EtherType: 0x0800} }

// SetTunnelAction returns a set_field(tunnel_id) action, used before
// outputting to a tunnel port to select the key/label on the wire.
func SetTunnelAction(id uint64) Action {
	return Action{Type: ActionTypeSetField, Field: oxmTunnelID, TunnelID: id}
}

func (a *Action) marshal(b []byte) ([]byte, error) {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, a.Type)
	b = binary.BigEndian.AppendUint16(b, 0) // length placeholder
	switch a.Type {
	case ActionTypeOutput:
		b = binary.BigEndian.AppendUint32(b, a.Port)
		b = binary.BigEndian.AppendUint16(b, a.MaxLen)
		b = append(b, 0, 0, 0, 0, 0, 0)
	case ActionTypeGroup:
		b = binary.BigEndian.AppendUint32(b, a.GroupID)
	case ActionTypePushMPLS:
		b = binary.BigEndian.AppendUint16(b, a.EtherType)
		// Non-standard but compact: carry the label in the pad so one
		// action expresses push_mpls+set_field. Field stays oxmMPLSLabel.
		b = binary.BigEndian.AppendUint32(b, a.MPLSLabel)
		b = append(b, 0, 0)
	case ActionTypePopMPLS:
		b = binary.BigEndian.AppendUint16(b, a.EtherType)
		b = append(b, 0, 0)
	case ActionTypeSetField:
		switch a.Field {
		case oxmMPLSLabel:
			b = oxmHeader(b, oxmMPLSLabel, false, 4)
			b = binary.BigEndian.AppendUint32(b, a.MPLSLabel)
		case oxmTunnelID:
			b = oxmHeader(b, oxmTunnelID, false, 8)
			b = binary.BigEndian.AppendUint64(b, a.TunnelID)
		default:
			return nil, fmt.Errorf("openflow: set_field of unsupported OXM %d", a.Field)
		}
	default:
		return nil, fmt.Errorf("openflow: cannot marshal action type %d", a.Type)
	}
	for (len(b)-start)%8 != 0 {
		b = append(b, 0)
	}
	binary.BigEndian.PutUint16(b[start+2:], uint16(len(b)-start))
	return b, nil
}

func (a *Action) unmarshal(b []byte) ([]byte, error) {
	*a = Action{}
	if len(b) < 4 {
		return nil, fmt.Errorf("openflow: action header truncated")
	}
	a.Type = binary.BigEndian.Uint16(b)
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < 8 || length%8 != 0 || len(b) < length {
		return nil, fmt.Errorf("openflow: bad action length %d", length)
	}
	body := b[4:length]
	switch a.Type {
	case ActionTypeOutput:
		if len(body) < 6 {
			return nil, fmt.Errorf("openflow: output action truncated")
		}
		a.Port = binary.BigEndian.Uint32(body)
		a.MaxLen = binary.BigEndian.Uint16(body[4:])
	case ActionTypeGroup:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: group action truncated")
		}
		a.GroupID = binary.BigEndian.Uint32(body)
	case ActionTypePushMPLS:
		if len(body) < 6 {
			return nil, fmt.Errorf("openflow: push_mpls action truncated")
		}
		a.EtherType = binary.BigEndian.Uint16(body)
		a.Field = oxmMPLSLabel
		a.MPLSLabel = binary.BigEndian.Uint32(body[2:])
	case ActionTypePopMPLS:
		if len(body) < 2 {
			return nil, fmt.Errorf("openflow: pop_mpls action truncated")
		}
		a.EtherType = binary.BigEndian.Uint16(body)
	case ActionTypeSetField:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: set_field action truncated")
		}
		field := body[2] >> 1
		l := int(body[3])
		if len(body) < 4+l {
			return nil, fmt.Errorf("openflow: set_field value truncated")
		}
		v := body[4 : 4+l]
		a.Field = field
		switch field {
		case oxmMPLSLabel:
			if l != 4 {
				return nil, fmt.Errorf("openflow: set_field mpls length %d", l)
			}
			a.MPLSLabel = binary.BigEndian.Uint32(v)
		case oxmTunnelID:
			if l != 8 {
				return nil, fmt.Errorf("openflow: set_field tunnel length %d", l)
			}
			a.TunnelID = binary.BigEndian.Uint64(v)
		default:
			return nil, fmt.Errorf("openflow: set_field of unsupported OXM %d", field)
		}
	default:
		return nil, fmt.Errorf("openflow: cannot unmarshal action type %d", a.Type)
	}
	return b[length:], nil
}

func marshalActions(b []byte, actions []Action) ([]byte, error) {
	var err error
	for i := range actions {
		if b, err = actions[i].marshal(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func unmarshalActions(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		var a Action
		var err error
		if b, err = a.unmarshal(b); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// Instruction type codes (OFPIT_*).
const (
	InstrGotoTable    uint16 = 1
	InstrApplyActions uint16 = 4
)

// Instruction is a flow-entry instruction: either apply-actions or
// goto-table.
type Instruction struct {
	Type    uint16
	TableID uint8    // GotoTable
	Actions []Action // ApplyActions
}

// ApplyActions wraps actions in an apply-actions instruction.
func ApplyActions(actions ...Action) Instruction {
	return Instruction{Type: InstrApplyActions, Actions: actions}
}

// Apply1 returns a one-entry instruction list applying a single action,
// with the list, instruction, and action in one allocation. This is the
// dominant rule shape on the admission hot paths; the composite-literal
// equivalent costs two allocations (the variadic slice plus the list).
// FlowMod1 returns a FlowMod whose instruction block is a single
// apply-actions of one action — the shape of nearly every rule the
// controller installs. The message, its instruction list, and its action
// list come from one combined allocation; the caller fills the remaining
// FlowMod fields.
func FlowMod1(a Action) *FlowMod {
	bx := &struct {
		fm   FlowMod
		inst [1]Instruction
		act  [1]Action
	}{}
	bx.act[0] = a
	bx.inst[0] = Instruction{Type: InstrApplyActions, Actions: bx.act[:]}
	bx.fm.Instructions = bx.inst[:]
	return &bx.fm
}

// PacketOut1 returns an unbuffered (OFP_NO_BUFFER) PacketOut carrying one
// action and the given frame, allocated together with its action list.
func PacketOut1(inPort uint32, a Action, data []byte) *PacketOut {
	bx := &struct {
		po  PacketOut
		act [1]Action
	}{po: PacketOut{BufferID: 0xffffffff, InPort: inPort, Data: data}}
	bx.act[0] = a
	bx.po.Actions = bx.act[:]
	return &bx.po
}

func Apply1(a Action) []Instruction {
	bx := &struct {
		inst [1]Instruction
		act  [1]Action
	}{act: [1]Action{a}}
	bx.inst[0] = Instruction{Type: InstrApplyActions, Actions: bx.act[:]}
	return bx.inst[:]
}

// GotoTable returns a goto-table instruction.
func GotoTable(table uint8) Instruction {
	return Instruction{Type: InstrGotoTable, TableID: table}
}

func (in *Instruction) marshal(b []byte) ([]byte, error) {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, in.Type)
	b = binary.BigEndian.AppendUint16(b, 0) // length placeholder
	switch in.Type {
	case InstrGotoTable:
		b = append(b, in.TableID, 0, 0, 0)
	case InstrApplyActions:
		b = append(b, 0, 0, 0, 0) // pad
		var err error
		if b, err = marshalActions(b, in.Actions); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("openflow: cannot marshal instruction type %d", in.Type)
	}
	binary.BigEndian.PutUint16(b[start+2:], uint16(len(b)-start))
	return b, nil
}

func (in *Instruction) unmarshal(b []byte) ([]byte, error) {
	*in = Instruction{}
	if len(b) < 4 {
		return nil, fmt.Errorf("openflow: instruction truncated")
	}
	in.Type = binary.BigEndian.Uint16(b)
	length := int(binary.BigEndian.Uint16(b[2:]))
	if length < 8 || len(b) < length {
		return nil, fmt.Errorf("openflow: bad instruction length %d", length)
	}
	body := b[4:length]
	switch in.Type {
	case InstrGotoTable:
		in.TableID = body[0]
	case InstrApplyActions:
		actions, err := unmarshalActions(body[4:])
		if err != nil {
			return nil, err
		}
		in.Actions = actions
	default:
		return nil, fmt.Errorf("openflow: cannot unmarshal instruction type %d", in.Type)
	}
	return b[length:], nil
}

func marshalInstructions(b []byte, ins []Instruction) ([]byte, error) {
	var err error
	for i := range ins {
		if b, err = ins[i].marshal(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func unmarshalInstructions(b []byte) ([]Instruction, error) {
	// Fast path: exactly one apply-actions instruction carrying exactly one
	// action — the shape of every single-output rule, i.e. nearly all rules
	// the controller installs. Decode it into one combined allocation
	// (instruction slice + action slice) instead of two.
	if len(b) >= 12 &&
		binary.BigEndian.Uint16(b) == InstrApplyActions &&
		int(binary.BigEndian.Uint16(b[2:])) == len(b) &&
		int(binary.BigEndian.Uint16(b[10:])) == len(b)-8 {
		bx := &struct {
			inst [1]Instruction
			act  [1]Action
		}{}
		rest, err := bx.act[0].unmarshal(b[8:])
		if err == nil && len(rest) == 0 {
			bx.inst[0] = Instruction{Type: InstrApplyActions, Actions: bx.act[:]}
			return bx.inst[:], nil
		}
		// Malformed single action: fall through so the generic loop reports
		// the same error the slow path always has.
	}
	var out []Instruction
	for len(b) > 0 {
		var in Instruction
		var err error
		if b, err = in.unmarshal(b); err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}
