package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the only protocol version spoken: OpenFlow 1.3.
const Version = 0x04

// MsgType is the OpenFlow message type (OFPT_*).
type MsgType uint8

// Message type codes.
const (
	TypeHello            MsgType = 0
	TypeError            MsgType = 1
	TypeEchoRequest      MsgType = 2
	TypeEchoReply        MsgType = 3
	TypeFeaturesRequest  MsgType = 5
	TypeFeaturesReply    MsgType = 6
	TypePacketIn         MsgType = 10
	TypeFlowRemoved      MsgType = 11
	TypePacketOut        MsgType = 13
	TypeFlowMod          MsgType = 14
	TypeGroupMod         MsgType = 15
	TypeMultipartRequest MsgType = 18
	TypeMultipartReply   MsgType = 19
	TypeBarrierRequest   MsgType = 20
	TypeBarrierReply     MsgType = 21
	TypeRoleRequest      MsgType = 24
	TypeRoleReply        MsgType = 25
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypePacketIn:
		return "PACKET_IN"
	case TypeFlowRemoved:
		return "FLOW_REMOVED"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeGroupMod:
		return "GROUP_MOD"
	case TypeMultipartRequest:
		return "MULTIPART_REQUEST"
	case TypeMultipartReply:
		return "MULTIPART_REPLY"
	case TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case TypeBarrierReply:
		return "BARRIER_REPLY"
	case TypeRoleRequest:
		return "ROLE_REQUEST"
	case TypeRoleReply:
		return "ROLE_REPLY"
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

const headerLen = 8

// MaxMessageLen bounds accepted message sizes, protecting ReadMessage from
// hostile length fields.
const MaxMessageLen = 1 << 16

// Message is an OpenFlow protocol message body.
type Message interface {
	// Type returns the OpenFlow message type code.
	Type() MsgType
	marshalBody(b []byte) ([]byte, error)
	unmarshalBody(b []byte) error
}

// sizeHinter is implemented by message types whose encoded size varies
// widely (payload-carrying or repeated-entry bodies). The hint is an
// upper-bound estimate of the body length; Marshal sizes its buffer from
// it so the binary.Append* calls in marshalBody never reallocate.
type sizeHinter interface {
	marshalSizeHint() int
}

// Marshal encodes a complete message (header + body) with the given
// transaction id.
func Marshal(m Message, xid uint32) ([]byte, error) {
	hint := 64
	if s, ok := m.(sizeHinter); ok {
		if n := s.marshalSizeHint(); n > hint {
			hint = n
		}
	}
	b := make([]byte, headerLen, headerLen+hint)
	b[0] = Version
	b[1] = byte(m.Type())
	binary.BigEndian.PutUint32(b[4:], xid)
	b, err := m.marshalBody(b)
	if err != nil {
		return nil, err
	}
	if len(b) > MaxMessageLen {
		return nil, fmt.Errorf("openflow: message too large (%d bytes)", len(b))
	}
	binary.BigEndian.PutUint16(b[2:], uint16(len(b)))
	return b, nil
}

// Unmarshal decodes one complete message, returning its body and xid.
func Unmarshal(b []byte) (Message, uint32, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("openflow: header truncated (%d bytes)", len(b))
	}
	if b[0] != Version {
		return nil, 0, fmt.Errorf("openflow: unsupported version %#02x", b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:]))
	xid := binary.BigEndian.Uint32(b[4:])
	if length < headerLen || length > len(b) {
		return nil, 0, fmt.Errorf("openflow: bad message length %d (have %d)", length, len(b))
	}
	m, err := newMessage(MsgType(b[1]))
	if err != nil {
		return nil, 0, err
	}
	if err := m.unmarshalBody(b[headerLen:length]); err != nil {
		return nil, 0, err
	}
	return m, xid, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeError:
		return &Error{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeGroupMod:
		return &GroupMod{}, nil
	case TypeMultipartRequest:
		return &MultipartRequest{}, nil
	case TypeMultipartReply:
		return &MultipartReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	case TypeRoleRequest:
		return &RoleRequest{}, nil
	case TypeRoleReply:
		return &RoleReply{}, nil
	}
	return nil, fmt.Errorf("openflow: unknown message type %d", uint8(t))
}

// WriteMessage encodes m and writes it to w.
func WriteMessage(w io.Writer, m Message, xid uint32) error {
	b, err := Marshal(m, xid)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadMessage reads exactly one framed message from r.
func ReadMessage(r io.Reader) (Message, uint32, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < headerLen || length > MaxMessageLen {
		return nil, 0, fmt.Errorf("openflow: bad framed length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, 0, err
	}
	return Unmarshal(buf)
}
