package fault

import (
	"math/rand"
	"time"
)

// Flap builds a link-churn plan: target goes down for roughly downFor,
// comes back for roughly upFor, and repeats until end. Each interval is
// stretched or shrunk by up to ±jitter (a fraction, e.g. 0.1 for ±10%)
// drawn from a private generator seeded with seed, so the plan is fully
// determined by its arguments and never touches the engine's RNG.
func Flap(seed int64, target string, start, end, downFor, upFor time.Duration, jitter float64) Plan {
	rng := rand.New(rand.NewSource(seed))
	jittered := func(d time.Duration) time.Duration {
		if jitter <= 0 {
			return d
		}
		f := 1 + jitter*(2*rng.Float64()-1)
		return time.Duration(float64(d) * f)
	}
	p := Plan{Seed: seed}
	at := start
	for at < end {
		p.Events = append(p.Events, Event{At: at, Kind: LinkDown, Target: target})
		at += jittered(downFor)
		if at >= end {
			at = end
		}
		p.Events = append(p.Events, Event{At: at, Kind: LinkUp, Target: target})
		at += jittered(upFor)
	}
	return p
}

// CrashRestart builds a plan that crashes a switch at crashAt and, if
// restartAt is positive, cold-boots it again at restartAt.
func CrashRestart(target string, crashAt, restartAt time.Duration) Plan {
	p := Plan{Events: []Event{{At: crashAt, Kind: SwitchCrash, Target: target}}}
	if restartAt > 0 {
		p.Events = append(p.Events, Event{At: restartAt, Kind: SwitchRestart, Target: target})
	}
	return p
}

// PartitionHeal builds a plan that partitions a controller replica at
// cutAt and heals it at healAt (skipped when healAt is zero).
func PartitionHeal(target string, cutAt, healAt time.Duration) Plan {
	p := Plan{Events: []Event{{At: cutAt, Kind: ControllerPartition, Target: target}}}
	if healAt > 0 {
		p.Events = append(p.Events, Event{At: healAt, Kind: ControllerHeal, Target: target})
	}
	return p
}

// Merge concatenates several plans into one schedule. The merged plan
// keeps the first plan's seed.
func Merge(plans ...Plan) Plan {
	var out Plan
	for i, p := range plans {
		if i == 0 {
			out.Seed = p.Seed
		}
		out.Events = append(out.Events, p.Events...)
	}
	return out
}
