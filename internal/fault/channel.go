package fault

import (
	"math/rand"
	"time"
)

// Verdict is the fate ChannelFaults assigns to one control-channel
// message. The zero value lets the message through untouched.
type Verdict struct {
	// Drop discards the message entirely.
	Drop bool
	// Duplicate delivers the message twice.
	Duplicate bool
	// Delay is added on top of the channel's normal latency.
	Delay time.Duration
}

// ChannelStats counts the faults a ChannelFaults policy has injected.
type ChannelStats struct {
	// Dropped counts messages discarded.
	Dropped uint64
	// Duplicated counts messages delivered twice.
	Duplicated uint64
	// Delayed counts messages given extra latency.
	Delayed uint64
}

// ChannelFaults is a seeded message-level fault policy for a control
// channel: each message independently risks being dropped, duplicated,
// or delayed. Devices hold it as a pointer and skip the draw entirely
// when the pointer is nil, so an unfaulted channel pays one nil check —
// the same zero-cost discipline the tracing hooks use. The policy draws
// from its own generator, never the engine's, so attaching it does not
// perturb workload randomness.
//
// ChannelFaults is not safe for concurrent use; in the simulator every
// draw happens on the single event-loop goroutine.
type ChannelFaults struct {
	// DropProb is the per-message probability of a drop.
	DropProb float64
	// DupProb is the per-message probability of a duplicate delivery.
	DupProb float64
	// DelayProb is the per-message probability of extra delay.
	DelayProb float64
	// MaxDelay bounds the extra delay; the draw is uniform in
	// [0, MaxDelay).
	MaxDelay time.Duration
	// Stats accumulates what the policy has injected.
	Stats ChannelStats

	rng *rand.Rand
}

// NewChannelFaults returns a policy drawing from a private generator
// seeded with seed. Configure the probability fields before use.
func NewChannelFaults(seed int64) *ChannelFaults {
	return &ChannelFaults{rng: rand.New(rand.NewSource(seed))}
}

// Verdict draws the fate of the next message. A nil receiver is an inert
// policy and always returns the zero verdict.
func (cf *ChannelFaults) Verdict() Verdict {
	if cf == nil {
		return Verdict{}
	}
	var v Verdict
	if cf.DropProb > 0 && cf.rng.Float64() < cf.DropProb {
		cf.Stats.Dropped++
		v.Drop = true
		return v
	}
	if cf.DupProb > 0 && cf.rng.Float64() < cf.DupProb {
		cf.Stats.Duplicated++
		v.Duplicate = true
	}
	if cf.DelayProb > 0 && cf.MaxDelay > 0 && cf.rng.Float64() < cf.DelayProb {
		cf.Stats.Delayed++
		v.Delay = time.Duration(cf.rng.Int63n(int64(cf.MaxDelay)))
	}
	return v
}
