package fault

import (
	"fmt"
	"sort"
	"time"

	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// Kind identifies the type of a fault event.
type Kind uint8

// Fault event kinds. Link faults target a named link, switch faults a
// named switch, controller faults a named controller replica; the mapping
// from names to concrete objects is the Environment's.
const (
	// LinkDown forces a link (or tunnel) out of service; packets offered
	// while down are counted as drops and discarded.
	LinkDown Kind = iota + 1
	// LinkUp returns a downed link to service.
	LinkUp
	// SwitchCrash fails a switch: the data plane stops forwarding and the
	// control channel goes silent, so heartbeats start missing.
	SwitchCrash
	// SwitchRestart cold-boots a crashed switch: forwarding resumes but
	// all dynamically installed flow and group state is lost, as when a
	// crashed vSwitch process comes back.
	SwitchRestart
	// ControllerPartition cuts a controller replica off from every switch
	// it manages, as a network partition would; the process survives.
	ControllerPartition
	// ControllerHeal ends a partition: the replica's control connections
	// re-establish, typically with stale role state that the switches'
	// generation fencing must reject.
	ControllerHeal
)

// String returns the kind's lowercase name.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchCrash:
		return "switch-crash"
	case SwitchRestart:
		return "switch-restart"
	case ControllerPartition:
		return "controller-partition"
	case ControllerHeal:
		return "controller-heal"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Event is one typed fault at an absolute point on the simulation clock.
type Event struct {
	// At is the simulation time the fault fires, measured from t=0.
	At time.Duration
	// Kind selects what happens.
	Kind Kind
	// Target names the object the fault applies to; the Environment
	// resolves it.
	Target string
}

// Plan is a deterministic fault schedule. Plans are plain data: they can
// be written literally or produced by the seeded generators in this
// package, and the same plan always injects the same faults at the same
// simulated instants regardless of host, parallelism, or wall clock.
type Plan struct {
	// Seed records the seed a generator used to build the plan; zero for
	// hand-written plans. It is informational — the events are already
	// fully determined.
	Seed int64
	// Events is the schedule. Order is irrelevant; the Runner sorts.
	Events []Event
}

// Sorted returns the events ordered by time, breaking ties by kind then
// target so scheduling order is deterministic.
func (p Plan) Sorted() []Event {
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].Target < evs[j].Target
	})
	return evs
}

// Environment applies fault events to a concrete rig. Experiments
// implement it with whatever topology handles they hold; returning an
// error (unknown target, unsupported kind) counts the event as failed
// without stopping the run.
type Environment interface {
	ApplyFault(ev Event) error
}

// Runner schedules a Plan's events on a simulation engine and applies
// them through an Environment, recording each injection as a telemetry
// Mark when a tracer is attached.
type Runner struct {
	eng sim.Proc
	env Environment
	tr  *telemetry.Tracer

	injected uint64
	failed   uint64
}

// NewRunner binds a runner to an engine, an environment, and an optional
// tracer (nil is fine and costs nothing).
func NewRunner(eng sim.Proc, env Environment, tr *telemetry.Tracer) *Runner {
	return &Runner{eng: eng, env: env, tr: tr}
}

// Schedule registers every event in the plan with the engine. Call it
// before the run starts; events dated before the engine's current time
// fire immediately at the next step.
func (r *Runner) Schedule(p Plan) {
	for _, ev := range p.Sorted() {
		ev := ev
		at := ev.At
		if at < r.eng.Now() {
			at = r.eng.Now()
		}
		r.eng.At(at, func() { r.fire(ev) })
	}
}

func (r *Runner) fire(ev Event) {
	r.injected++
	r.tr.Mark("fault: "+ev.Kind.String()+" "+ev.Target, r.eng.Now())
	if err := r.env.ApplyFault(ev); err != nil {
		r.failed++
	}
}

// Injected returns how many events have fired so far.
func (r *Runner) Injected() uint64 { return r.injected }

// Failed returns how many fired events the environment rejected.
func (r *Runner) Failed() uint64 { return r.failed }

// BindMetrics registers the runner's counters with a telemetry registry.
func (r *Runner) BindMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("scotch_fault_injected_total", func() uint64 { return r.injected })
	reg.CounterFunc("scotch_fault_apply_errors_total", func() uint64 { return r.failed })
}
