package fault

import (
	"errors"
	"testing"
	"time"

	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

type recordEnv struct {
	got  []Event
	fail map[Kind]bool
}

func (e *recordEnv) ApplyFault(ev Event) error {
	e.got = append(e.got, ev)
	if e.fail[ev.Kind] {
		return errors.New("nope")
	}
	return nil
}

func TestRunnerFiresInOrder(t *testing.T) {
	eng := sim.New(1)
	env := &recordEnv{}
	r := NewRunner(eng, env, nil)
	plan := Plan{Events: []Event{
		{At: 300 * time.Millisecond, Kind: LinkUp, Target: "l"},
		{At: 100 * time.Millisecond, Kind: SwitchCrash, Target: "vs0"},
		{At: 100 * time.Millisecond, Kind: LinkDown, Target: "l"},
	}}
	r.Schedule(plan)
	eng.RunUntil(time.Second)
	if len(env.got) != 3 {
		t.Fatalf("applied %d events, want 3", len(env.got))
	}
	// Ties break by kind: LinkDown (1) before SwitchCrash (3).
	if env.got[0].Kind != LinkDown || env.got[1].Kind != SwitchCrash || env.got[2].Kind != LinkUp {
		t.Fatalf("wrong order: %+v", env.got)
	}
	if r.Injected() != 3 || r.Failed() != 0 {
		t.Fatalf("injected=%d failed=%d", r.Injected(), r.Failed())
	}
}

func TestRunnerCountsFailuresAndMarks(t *testing.T) {
	eng := sim.New(1)
	env := &recordEnv{fail: map[Kind]bool{SwitchRestart: true}}
	tr := telemetry.NewTracer()
	r := NewRunner(eng, env, tr)
	reg := telemetry.NewRegistry()
	r.BindMetrics(reg)
	r.Schedule(CrashRestart("vs1", 10*time.Millisecond, 20*time.Millisecond))
	eng.RunUntil(time.Second)
	if r.Injected() != 2 || r.Failed() != 1 {
		t.Fatalf("injected=%d failed=%d, want 2/1", r.Injected(), r.Failed())
	}
	marks := tr.Marks()
	if len(marks) != 2 {
		t.Fatalf("tracer recorded %d fault marks, want 2", len(marks))
	}
	if marks[0].Name != "fault: switch-crash vs1" || marks[0].At != 10*time.Millisecond {
		t.Fatalf("unexpected first mark: %+v", marks[0])
	}
}

func TestFlapDeterministicAndAlternating(t *testing.T) {
	a := Flap(7, "link:c0", time.Second, 5*time.Second, time.Second, 500*time.Millisecond, 0.1)
	b := Flap(7, "link:c0", time.Second, 5*time.Second, time.Second, 500*time.Millisecond, 0.1)
	if len(a.Events) == 0 || len(a.Events)%2 != 0 {
		t.Fatalf("flap plan has %d events, want a positive even count", len(a.Events))
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced different plans: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	for i, ev := range a.Sorted() {
		want := LinkDown
		if i%2 == 1 {
			want = LinkUp
		}
		if ev.Kind != want {
			t.Fatalf("event %d is %v, want %v", i, ev.Kind, want)
		}
	}
}

func TestChannelFaultsDeterministicAndCounted(t *testing.T) {
	draw := func() ([]Verdict, ChannelStats) {
		cf := NewChannelFaults(99)
		cf.DropProb = 0.3
		cf.DupProb = 0.3
		cf.DelayProb = 0.5
		cf.MaxDelay = 10 * time.Millisecond
		out := make([]Verdict, 200)
		for i := range out {
			out[i] = cf.Verdict()
		}
		return out, cf.Stats
	}
	a, sa := draw()
	b, sb := draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if sa.Dropped == 0 || sa.Duplicated == 0 || sa.Delayed == 0 {
		t.Fatalf("expected all fault classes to occur over 200 draws: %+v", sa)
	}
	total := int(sa.Dropped)
	for _, v := range a {
		if v.Drop && (v.Duplicate || v.Delay != 0) {
			t.Fatalf("dropped message also duplicated/delayed: %+v", v)
		}
		if v.Delay < 0 || v.Delay >= 10*time.Millisecond {
			t.Fatalf("delay out of range: %v", v.Delay)
		}
	}
	if total == 200 {
		t.Fatal("every message dropped; probabilities not applied independently")
	}
}

func TestChannelFaultsNilIsInert(t *testing.T) {
	var cf *ChannelFaults
	if v := cf.Verdict(); v != (Verdict{}) {
		t.Fatalf("nil policy returned %+v", v)
	}
}

func TestBackoffScheduleCapAndReset(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("attempts=%d, want %d", b.Attempts(), len(want))
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after reset got %v, want base", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 42)
	prevLo := time.Duration(0)
	for i := 0; i < 20; i++ {
		base := float64(100*time.Millisecond) * pow2(i)
		if base > float64(time.Second) {
			base = float64(time.Second)
		}
		lo := time.Duration(base * (1 - b.Jitter))
		hi := time.Duration(base * (1 + b.Jitter))
		got := b.Next()
		if got < lo || got > hi {
			t.Fatalf("attempt %d: %v outside [%v, %v]", i, got, lo, hi)
		}
		if lo < prevLo {
			t.Fatalf("schedule not monotone before cap")
		}
		prevLo = lo
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}
