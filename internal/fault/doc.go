// Package fault is a deterministic fault-injection harness for the
// simulated Scotch control plane. It exists to exercise the paper's §5
// reliability mechanisms — vSwitch ECHO heartbeats (§5.4), backup-vSwitch
// promotion (§5.6), and overlay withdrawal (§5.5) — under adversarial
// conditions, and to provide the reconnect backoff used by the live TCP
// path in internal/ofnet.
//
// A fault campaign is a Plan: a seeded, typed list of Events on the
// simulation clock (link down/up, switch crash/restart, controller
// partition/heal). A Runner schedules the plan on a sim.Engine and applies
// each event through an Environment implemented by the experiment rig, so
// this package never imports topology or device types and stays free of
// import cycles. Message-level faults (drop, duplicate, extra delay on a
// control channel) are modelled separately by ChannelFaults, which devices
// consult through a nil-guarded pointer — the same zero-cost hook pattern
// telemetry tracing uses, so a rig with no faults configured pays a single
// nil check and allocates nothing.
//
// All randomness is drawn from private generators seeded by the plan or
// policy, never from the engine's RNG: injecting (or not injecting) faults
// therefore cannot perturb the random choices of the workload, and a
// no-fault run remains byte-identical to a build without this package.
package fault
