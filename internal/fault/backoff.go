package fault

import (
	"math/rand"
	"time"
)

// Backoff is an exponential backoff schedule with multiplicative jitter,
// used by the live path (cmd/ofagent, internal/ofnet) to pace reconnect
// attempts. It is pure arithmetic over an attempt counter — it never
// reads a clock — so its full schedule is unit-testable without sleeping.
type Backoff struct {
	// Base is the first interval.
	Base time.Duration
	// Max caps the un-jittered interval.
	Max time.Duration
	// Factor multiplies the interval after each attempt (≥ 1).
	Factor float64
	// Jitter spreads each interval uniformly over
	// [d·(1−Jitter), d·(1+Jitter)]; zero disables jitter.
	Jitter float64

	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a schedule with the conventional shape — doubling
// from base up to max with ±20% jitter — drawing jitter from a private
// generator seeded with seed.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	return &Backoff{
		Base:   base,
		Max:    max,
		Factor: 2,
		Jitter: 0.2,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Next returns the wait before the next attempt and advances the
// schedule: Base·Factorⁿ capped at Max, then jittered.
func (b *Backoff) Next() time.Duration {
	d := float64(b.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	b.attempt++
	if b.Jitter > 0 && b.rng != nil {
		d *= 1 + b.Jitter*(2*b.rng.Float64()-1)
	}
	if max := float64(b.Max) * (1 + b.Jitter); d > max {
		d = max
	}
	return time.Duration(d)
}

// Reset rewinds the schedule to Base, as after a connection that proved
// stable.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempts returns how many intervals have been handed out since the
// last Reset.
func (b *Backoff) Attempts() int { return b.attempt }
