// Package ofnet runs the OpenFlow codec over real TCP connections: a
// concurrent controller listener and a live (wall-clock, goroutine-based)
// software switch agent. The simulator in the rest of the repository
// exercises the same codec under virtual time; this package demonstrates
// that the protocol layer is a genuine network implementation, not a
// simulation artifact.
//
// The live path carries the same reliability mechanisms the simulated
// path models from the paper's §5: the agent reconnects with exponential
// backoff and jitter, falls back to operator-configured default actions
// for table misses while no controller is reachable, and the controller
// side offers barrier-confirmed rule installation with bounded retry.
package ofnet
