package ofnet

import (
	"context"
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

// countingHandler records Packet-Ins without reacting; role tests only
// care about which controller the switch punts to.
type countingHandler struct {
	ready     chan uint64
	packetIns chan uint64
}

func newCountingHandler() *countingHandler {
	return &countingHandler{ready: make(chan uint64, 8), packetIns: make(chan uint64, 64)}
}

func (h *countingHandler) SwitchConnected(sw *SwitchConn) { h.ready <- sw.DPID }
func (h *countingHandler) SwitchGone(sw *SwitchConn)      {}
func (h *countingHandler) PacketIn(sw *SwitchConn, pin *openflow.PacketIn) {
	h.packetIns <- sw.DPID
}

// TestRoleHandoffOverTCP drives the full master/slave life cycle over
// real TCP: two controllers share one switch, the master handoff moves
// Packet-In delivery, slave writes bounce, and a stale generation id
// cannot reclaim mastership.
func TestRoleHandoffOverTCP(t *testing.T) {
	h1, h2 := newCountingHandler(), newCountingHandler()
	ctrl1, err := NewController("127.0.0.1:0", h1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl1.Close()
	ctrl2, err := NewController("127.0.0.1:0", h2)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()

	ls := NewLiveSwitch(0x7, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ls.DialAndServe(ctx, ctrl1.Addr())
	go ls.DialAndServe(ctx, ctrl2.Addr())
	for _, h := range []*countingHandler{h1, h2} {
		select {
		case <-h.ready:
		case <-time.After(5 * time.Second):
			t.Fatal("handshake timeout")
		}
	}
	sw1, sw2 := ctrl1.Switch(0x7), ctrl2.Switch(0x7)
	if sw1 == nil || sw2 == nil {
		t.Fatal("switch not registered at both controllers")
	}
	if sw1.Role() != openflow.RoleEqual {
		t.Fatalf("initial role = %s, want EQUAL", openflow.RoleName(sw1.Role()))
	}

	// Controller 1 claims master, controller 2 takes slave.
	if err := sw1.RequestRole(openflow.RoleMaster, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sw1.Role() == openflow.RoleMaster }, "master role reply")
	if err := sw2.RequestRole(openflow.RoleSlave, 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sw2.Role() == openflow.RoleSlave }, "slave role reply")

	// A table miss punts to the master only.
	p := packet.NewTCP(netaddr.MakeIPv4(10, 0, 0, 1), netaddr.MakeIPv4(10, 0, 1, 1), 1000, 80, packet.FlagSYN)
	ls.Inject(p.Clone(), 1)
	select {
	case <-h1.packetIns:
	case <-time.After(5 * time.Second):
		t.Fatal("master never received the punt")
	}
	select {
	case <-h2.packetIns:
		t.Fatal("slave received a Packet-In")
	case <-time.After(50 * time.Millisecond):
	}

	// Slave writes bounce with OFPBRC_IS_SLAVE and install nothing.
	if err := sw2.Install(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(1))},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ls.SlaveDenied.Load() == 1 }, "slave FlowMod rejection")
	if n := ls.RuleCount(); n != 0 {
		t.Fatalf("slave installed %d rules", n)
	}

	// Controller 2 claims master with a newer generation: the switch
	// demotes controller 1 and punts flow misses to controller 2 only.
	if err := sw2.RequestRole(openflow.RoleMaster, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sw2.Role() == openflow.RoleMaster }, "handoff role reply")
	waitFor(t, func() bool { return slaveConns(ls) == 1 }, "old master demoted")
	p2 := packet.NewTCP(netaddr.MakeIPv4(10, 0, 0, 2), netaddr.MakeIPv4(10, 0, 1, 2), 1001, 80, packet.FlagSYN)
	ls.Inject(p2.Clone(), 1)
	select {
	case <-h2.packetIns:
	case <-time.After(5 * time.Second):
		t.Fatal("new master never received the punt")
	}
	select {
	case <-h1.packetIns:
		t.Fatal("demoted master received a Packet-In")
	case <-time.After(50 * time.Millisecond):
	}

	// A stale generation id (1 < 3) cannot reclaim mastership.
	if err := sw1.RequestRole(openflow.RoleMaster, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ls.RoleStale.Load() == 1 }, "stale claim fenced")
	ls.Inject(p2.Clone(), 1)
	select {
	case <-h2.packetIns:
	case <-time.After(5 * time.Second):
		t.Fatal("master lost the switch to a stale claim")
	}
}

// slaveConns counts the switch-side connections currently in the slave
// role.
func slaveConns(ls *LiveSwitch) int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	n := 0
	for _, r := range ls.conns {
		if r.role == openflow.RoleSlave {
			n++
		}
	}
	return n
}
