package ofnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scotch/internal/openflow"
	"scotch/internal/telemetry"
)

// Conn is a framed, write-locked OpenFlow connection.
type Conn struct {
	c    net.Conn
	wmu  sync.Mutex
	xid  atomic.Uint32
	once sync.Once

	// errCounter, when set, is shared with the owning endpoint and counts
	// failed writes across all of its connections.
	errCounter *atomic.Uint64
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Send marshals and writes a message with a fresh transaction id,
// returning that id.
func (c *Conn) Send(m openflow.Message) (uint32, error) {
	xid := c.xid.Add(1)
	return xid, c.SendXID(m, xid)
}

// SendXID marshals and writes a message with the given transaction id.
func (c *Conn) SendXID(m openflow.Message, xid uint32) error {
	b, err := openflow.Marshal(m, xid)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err = c.c.Write(b)
	if err != nil && c.errCounter != nil {
		c.errCounter.Add(1)
	}
	return err
}

// NextXID reserves and returns a fresh transaction id, letting callers
// register reply routing before the request hits the wire.
func (c *Conn) NextXID() uint32 { return c.xid.Add(1) }

// Recv reads one framed message.
func (c *Conn) Recv() (openflow.Message, uint32, error) {
	return openflow.ReadMessage(c.c)
}

// Close closes the underlying connection once.
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() { err = c.c.Close() })
	return err
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// SwitchConn is the controller's handle on one connected switch.
type SwitchConn struct {
	DPID     uint64
	NTables  uint8
	conn     *Conn
	ctrl     *Controller
	lastEcho atomic.Int64  // unix nanos of the last echo reply
	role     atomic.Uint32 // last role confirmed by a RoleReply

	bmu      sync.Mutex
	barriers map[uint32]chan struct{}

	PacketIns       atomic.Uint64
	SlaveSuppressed atomic.Uint64
	// InstallRetries counts FlowMod+Barrier pairs that had to be resent
	// because the barrier reply did not arrive in time.
	InstallRetries atomic.Uint64
}

// ErrBarrierTimeout is returned by Barrier and InstallReliable when the
// switch does not acknowledge the barrier within the deadline.
var ErrBarrierTimeout = errors.New("ofnet: barrier reply timeout")

// Install sends a FlowMod to the switch.
func (s *SwitchConn) Install(fm *openflow.FlowMod) error {
	_, err := s.conn.Send(fm)
	return err
}

// Barrier sends a BarrierRequest and blocks until the matching
// BarrierReply arrives on the read loop, confirming every earlier message
// on this connection has been processed (OF 1.3 §6.2). Returns
// ErrBarrierTimeout when no reply lands within timeout.
func (s *SwitchConn) Barrier(timeout time.Duration) error {
	xid := s.conn.NextXID()
	ch := make(chan struct{})
	s.bmu.Lock()
	if s.barriers == nil {
		s.barriers = make(map[uint32]chan struct{})
	}
	s.barriers[xid] = ch
	s.bmu.Unlock()
	if err := s.conn.SendXID(&openflow.BarrierRequest{}, xid); err != nil {
		s.dropBarrier(xid)
		return err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
		return nil
	case <-t.C:
		s.dropBarrier(xid)
		return ErrBarrierTimeout
	}
}

func (s *SwitchConn) dropBarrier(xid uint32) {
	s.bmu.Lock()
	delete(s.barriers, xid)
	s.bmu.Unlock()
}

// barrierDone releases the waiter for xid, if any. Called by the read loop.
func (s *SwitchConn) barrierDone(xid uint32) {
	s.bmu.Lock()
	ch := s.barriers[xid]
	delete(s.barriers, xid)
	s.bmu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// InstallReliable sends a FlowMod and confirms it with a barrier,
// resending the pair when the barrier times out — the retry discipline a
// faulty control channel (message loss, a switch mid-restart) demands.
// retries is the number of additional attempts after the first; the last
// barrier error is returned when all attempts fail.
func (s *SwitchConn) InstallReliable(fm *openflow.FlowMod, timeout time.Duration, retries int) error {
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			s.InstallRetries.Add(1)
		}
		if err = s.Install(fm); err != nil {
			continue
		}
		if err = s.Barrier(timeout); err == nil {
			return nil
		}
	}
	return err
}

// PacketOut injects a packet at the switch.
func (s *SwitchConn) PacketOut(po *openflow.PacketOut) error {
	_, err := s.conn.Send(po)
	return err
}

// GroupMod installs or modifies a group at the switch.
func (s *SwitchConn) GroupMod(gm *openflow.GroupMod) error {
	_, err := s.conn.Send(gm)
	return err
}

// LastEcho returns the time of the last heartbeat reply.
func (s *SwitchConn) LastEcho() time.Time {
	return time.Unix(0, s.lastEcho.Load())
}

// Role returns the controller's role on this switch as last confirmed
// by a RoleReply. Connections start out Equal (OF 1.3 §6.3).
func (s *SwitchConn) Role() uint32 { return s.role.Load() }

// RequestRole asks the switch for a role change. Master and slave
// claims must carry a generation id no older than the switch's highest
// seen; stale claims are answered with a RoleRequestFailed error and
// the local role is left unchanged. The confirmed role is applied when
// the RoleReply arrives on the read loop.
func (s *SwitchConn) RequestRole(role uint32, generation uint64) error {
	_, err := s.conn.Send(&openflow.RoleRequest{Role: role, GenerationID: generation})
	return err
}

// Handler receives controller events. Implementations must be safe for
// concurrent use: each switch connection runs on its own goroutine.
type Handler interface {
	// SwitchConnected fires after the Hello/Features handshake.
	SwitchConnected(sw *SwitchConn)
	// PacketIn delivers a punted packet.
	PacketIn(sw *SwitchConn, pin *openflow.PacketIn)
	// SwitchGone fires when the connection drops.
	SwitchGone(sw *SwitchConn)
}

// Controller is a TCP OpenFlow controller.
type Controller struct {
	handler Handler
	ln      net.Listener

	mu       sync.Mutex
	switches map[uint64]*SwitchConn

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// EchoInterval sets the keepalive period (default 5s).
	EchoInterval time.Duration

	// Connection and message counters, updated by the per-switch read
	// loops and readable from any goroutine.
	ConnsAccepted atomic.Uint64
	MsgsReceived  atomic.Uint64
	PacketInsRecv atomic.Uint64
	WriteErrors   atomic.Uint64
}

// BindMetrics registers the listener's connection and message counters
// with a telemetry registry.
func (c *Controller) BindMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("scotch_ofnet_switches_connected", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.switches))
	})
	reg.CounterFunc("scotch_ofnet_conns_accepted_total", c.ConnsAccepted.Load)
	reg.CounterFunc("scotch_ofnet_messages_received_total", c.MsgsReceived.Load)
	reg.CounterFunc("scotch_ofnet_packet_ins_total", c.PacketInsRecv.Load)
	reg.CounterFunc("scotch_ofnet_write_errors_total", c.WriteErrors.Load)
}

// NewController listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewController(addr string, h Handler) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		handler:      h,
		ln:           ln,
		switches:     make(map[uint64]*SwitchConn),
		ctx:          ctx,
		cancel:       cancel,
		EchoInterval: 5 * time.Second,
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listen address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Switch returns the connected switch with the given datapath id, or nil.
func (c *Controller) Switch(dpid uint64) *SwitchConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.switches[dpid]
}

// Switches returns a snapshot of connected switches.
func (c *Controller) Switches() []*SwitchConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*SwitchConn, 0, len(c.switches))
	for _, s := range c.switches {
		out = append(out, s)
	}
	return out
}

// Close stops the listener and all switch connections.
func (c *Controller) Close() error {
	c.cancel()
	err := c.ln.Close()
	c.mu.Lock()
	for _, s := range c.switches {
		s.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.ConnsAccepted.Add(1)
		conn := NewConn(nc)
		conn.errCounter = &c.WriteErrors
		c.wg.Add(1)
		go c.serveSwitch(conn)
	}
}

// serveSwitch runs the handshake and the per-switch message loop.
func (c *Controller) serveSwitch(conn *Conn) {
	defer c.wg.Done()
	defer conn.Close()

	if _, err := conn.Send(&openflow.Hello{}); err != nil {
		return
	}
	sw, err := c.handshake(conn)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.switches[sw.DPID] = sw
	c.mu.Unlock()
	c.handler.SwitchConnected(sw)

	stopEcho := make(chan struct{})
	c.wg.Add(1)
	go c.echoLoop(sw, stopEcho)
	defer func() {
		close(stopEcho)
		c.mu.Lock()
		delete(c.switches, sw.DPID)
		c.mu.Unlock()
		c.handler.SwitchGone(sw)
	}()

	for {
		msg, xid, err := conn.Recv()
		if err != nil {
			return
		}
		c.MsgsReceived.Add(1)
		switch m := msg.(type) {
		case *openflow.PacketIn:
			// The switch already withholds Packet-Ins from slave
			// connections; dropping here too covers the window where a
			// punt raced with our own demotion.
			if sw.role.Load() == openflow.RoleSlave {
				sw.SlaveSuppressed.Add(1)
				continue
			}
			sw.PacketIns.Add(1)
			c.PacketInsRecv.Add(1)
			c.handler.PacketIn(sw, m)
		case *openflow.EchoRequest:
			if err := conn.SendXID(&openflow.EchoReply{Data: m.Data}, xid); err != nil {
				return
			}
		case *openflow.EchoReply:
			sw.lastEcho.Store(time.Now().UnixNano())
		case *openflow.RoleReply:
			sw.role.Store(m.Role)
		case *openflow.BarrierReply:
			sw.barrierDone(xid)
		case *openflow.Error, *openflow.FlowRemoved, *openflow.MultipartReply:
			// Accepted silently; extend Handler as needed.
		}
	}
}

func (c *Controller) handshake(conn *Conn) (*SwitchConn, error) {
	deadline := time.Now().Add(10 * time.Second)
	sawHello := false
	for time.Now().Before(deadline) {
		msg, _, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *openflow.Hello:
			sawHello = true
			if _, err := conn.Send(&openflow.FeaturesRequest{}); err != nil {
				return nil, err
			}
		case *openflow.FeaturesReply:
			if !sawHello {
				return nil, errors.New("ofnet: features reply before hello")
			}
			sw := &SwitchConn{DPID: m.DatapathID, NTables: m.NTables, conn: conn, ctrl: c}
			sw.role.Store(openflow.RoleEqual)
			return sw, nil
		}
	}
	return nil, fmt.Errorf("ofnet: handshake timeout from %v", conn.RemoteAddr())
}

func (c *Controller) echoLoop(sw *SwitchConn, stop <-chan struct{}) {
	defer c.wg.Done()
	t := time.NewTicker(c.EchoInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-c.ctx.Done():
			return
		case <-t.C:
			if _, err := sw.conn.Send(&openflow.EchoRequest{Data: []byte("hb")}); err != nil {
				return
			}
		}
	}
}
