package ofnet

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"scotch/internal/fault"
	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

// freeAddr grabs an ephemeral port and releases it so a later listener
// can bind it. Racy in principle, fine in practice for a local test.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialAndServeRetryReconnects(t *testing.T) {
	addr := freeAddr(t)

	ls := NewLiveSwitch(0xfa, 1)
	bo := &fault.Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2}
	var attempts atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- ls.DialAndServeRetry(ctx, addr, bo, func(err error, next time.Duration) {
			attempts.Add(1)
		})
	}()

	// Nothing is listening yet: the agent must keep retrying.
	deadline := time.Now().Add(5 * time.Second)
	for attempts.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("agent did not retry while controller was down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Bring the controller up on the same address: the agent's next
	// attempt must complete the handshake.
	h := newReactiveHandler(2)
	ctrl, err := NewController(addr, h)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	select {
	case dpid := <-h.ready:
		if dpid != 0xfa {
			t.Fatalf("connected dpid %#x, want 0xfa", dpid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent never connected after controller came up")
	}
	if ls.Reconnects.Load() < 2 {
		t.Fatalf("Reconnects=%d, want >=2", ls.Reconnects.Load())
	}

	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("retry loop returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop did not exit on cancel")
	}
}

func TestDefaultActionsFallbackWhileDisconnected(t *testing.T) {
	ls := NewLiveSwitch(0xfb, 1)
	var delivered atomic.Int32
	ls.RegisterPort(7, func(p *packet.Packet) { delivered.Add(1) })

	pkt := packet.NewTCP(netaddr.MakeIPv4(10, 0, 0, 1), netaddr.MakeIPv4(10, 0, 1, 1), 1234, 80, packet.FlagSYN)

	// No controller, no fallback: the miss is dropped.
	ls.Inject(pkt.Clone(), 1)
	if delivered.Load() != 0 || ls.DefaultRouted.Load() != 0 {
		t.Fatalf("miss was routed without a fallback configured")
	}

	// With the fallback set, misses flow out the default port.
	ls.SetDefaultActions(openflow.OutputAction(7))
	ls.Inject(pkt.Clone(), 1)
	if delivered.Load() != 1 {
		t.Fatalf("delivered=%d, want 1", delivered.Load())
	}
	if ls.DefaultRouted.Load() != 1 {
		t.Fatalf("DefaultRouted=%d, want 1", ls.DefaultRouted.Load())
	}

	// Clearing it restores the drop behaviour.
	ls.SetDefaultActions()
	ls.Inject(pkt.Clone(), 1)
	if delivered.Load() != 1 {
		t.Fatalf("fallback still active after clearing")
	}
}

func TestInstallReliableOverTCP(t *testing.T) {
	h := newReactiveHandler(2)
	ctrl, err := NewController("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	ls := NewLiveSwitch(0xfc, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ls.DialAndServe(ctx, ctrl.Addr())
	select {
	case <-h.ready:
	case <-time.After(5 * time.Second):
		t.Fatal("switch never connected")
	}

	sw := ctrl.Switch(0xfc)
	fm := &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 10,
		Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: 1},
		Instructions: []openflow.Instruction{{
			Type:    openflow.InstrApplyActions,
			Actions: []openflow.Action{openflow.OutputAction(2)},
		}},
	}
	if err := sw.InstallReliable(fm, 2*time.Second, 2); err != nil {
		t.Fatalf("InstallReliable: %v", err)
	}
	if got := ls.RuleCount(); got != 1 {
		t.Fatalf("RuleCount=%d, want 1", got)
	}
	if sw.InstallRetries.Load() != 0 {
		t.Fatalf("healthy path recorded %d retries", sw.InstallRetries.Load())
	}
}

// silentConn swallows everything written to it, so barrier replies never
// come back — the timeout and retry paths in isolation.
func TestBarrierTimeoutAndRetry(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	// Drain the server side so writes don't block, but never reply.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	sw := &SwitchConn{DPID: 1, conn: NewConn(client)}
	start := time.Now()
	if err := sw.Barrier(50 * time.Millisecond); err != ErrBarrierTimeout {
		t.Fatalf("Barrier returned %v, want ErrBarrierTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("Barrier returned after %v, before the deadline", elapsed)
	}

	fm := &openflow.FlowMod{Command: openflow.FlowAdd, Priority: 1}
	if err := sw.InstallReliable(fm, 20*time.Millisecond, 2); err != ErrBarrierTimeout {
		t.Fatalf("InstallReliable returned %v, want ErrBarrierTimeout", err)
	}
	if got := sw.InstallRetries.Load(); got != 2 {
		t.Fatalf("InstallRetries=%d, want 2", got)
	}
	if len(sw.barriers) != 0 {
		t.Fatalf("%d leaked barrier waiters", len(sw.barriers))
	}
}
