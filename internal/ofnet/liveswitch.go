package ofnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scotch/internal/fault"
	"scotch/internal/flowtable"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

// LiveSwitch is a wall-clock software OpenFlow switch: the same flow-table
// pipeline the simulator uses, driven by real goroutines and connected to
// a real controller over TCP. Output ports are callbacks, so switches can
// be wired to each other, to packet sockets, or to test sinks.
type LiveSwitch struct {
	DPID uint64

	mu       sync.Mutex
	pipeline *flowtable.Pipeline
	outputs  map[uint32]func(*packet.Packet)
	start    time.Time
	conns    map[*Conn]*connRole
	genID    uint64
	genSeen  bool

	// defaultActions, when non-nil, are executed for table-miss packets
	// that have no live non-slave controller connection to punt to: the
	// paper's default-rule fallback, keeping traffic flowing (degraded)
	// while the controller is unreachable.
	defaultActions []openflow.Action

	// Stats. Atomics, not mu-guarded fields: the data plane (Inject, any
	// goroutine) and the control loop (DialAndServe's goroutine) both
	// update them, and monitors read them without stalling either.
	Forwarded   atomic.Uint64
	Misses      atomic.Uint64
	Installed   atomic.Uint64
	SlaveDenied atomic.Uint64
	RoleStale   atomic.Uint64
	// DefaultRouted counts misses handled by the default-action fallback
	// while no controller was reachable.
	DefaultRouted atomic.Uint64
	// Reconnects counts completed DialAndServeRetry attempts that had to
	// be retried (i.e. connection failures survived).
	Reconnects atomic.Uint64
}

// connRole is the switch-side view of one controller connection's
// OpenFlow role (multi-controller, OF 1.3 §6.3).
type connRole struct {
	role uint32
}

// NewLiveSwitch creates a switch with the given number of flow tables.
func NewLiveSwitch(dpid uint64, tables int) *LiveSwitch {
	return &LiveSwitch{
		DPID:     dpid,
		pipeline: flowtable.NewPipeline(tables, 0),
		outputs:  make(map[uint32]func(*packet.Packet)),
		start:    time.Now(),
		conns:    make(map[*Conn]*connRole),
	}
}

// BindMetrics registers the switch's data-plane and control counters with
// a telemetry registry under a dpid label.
func (ls *LiveSwitch) BindMetrics(reg *telemetry.Registry) {
	lbl := telemetry.Labels("dpid", fmt.Sprint(ls.DPID))
	reg.CounterFunc("scotch_agent_forwarded_total"+lbl, ls.Forwarded.Load)
	reg.CounterFunc("scotch_agent_misses_total"+lbl, ls.Misses.Load)
	reg.CounterFunc("scotch_agent_rules_installed_total"+lbl, ls.Installed.Load)
	reg.CounterFunc("scotch_agent_slave_denied_total"+lbl, ls.SlaveDenied.Load)
	reg.GaugeFunc("scotch_agent_rule_count"+lbl, func() float64 { return float64(ls.RuleCount()) })
}

// RegisterPort wires an output port to a delivery function.
func (ls *LiveSwitch) RegisterPort(id uint32, deliver func(*packet.Packet)) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.outputs[id] = deliver
}

func (ls *LiveSwitch) now() sim.Time { return time.Since(ls.start) }

// SetDefaultActions installs the action list applied to table-miss
// packets while the switch has no non-slave controller connection — the
// paper's "default rule" degradation: keep forwarding on a preprovisioned
// path rather than blackholing when the control plane is unreachable.
// Pass no actions to disable the fallback (misses are then dropped while
// disconnected, the OpenFlow default).
func (ls *LiveSwitch) SetDefaultActions(actions ...openflow.Action) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.defaultActions = actions
}

// Inject offers a packet to the data plane on the given ingress port.
// Misses are punted to every connected controller that has not taken
// the slave role (OF 1.3 §6.3: slaves receive no async messages).
func (ls *LiveSwitch) Inject(pkt *packet.Packet, inPort uint32) {
	ls.mu.Lock()
	res := ls.pipeline.Process(pkt, inPort, ls.now())
	var punt []*Conn
	if res.Miss {
		ls.Misses.Add(1)
		for c, r := range ls.conns {
			if r.role != openflow.RoleSlave {
				punt = append(punt, c)
			}
		}
	} else {
		ls.Forwarded.Add(1)
	}
	// Copy before unlocking: merged multi-table results alias the
	// pipeline's scratch buffer, which the next Process call reuses.
	actions := append([]openflow.Action(nil), res.Actions...)
	fallback := ls.defaultActions
	ls.mu.Unlock()

	if res.Miss {
		if len(punt) > 0 {
			pin := &openflow.PacketIn{
				BufferID: 0xffffffff,
				TotalLen: uint16(pkt.Size),
				Reason:   openflow.ReasonNoMatch,
				Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: inPort},
				Data:     pkt.Marshal(),
			}
			for _, conn := range punt {
				// A send failure here means that control connection
				// dropped; its DialAndServe read loop surfaces it.
				conn.Send(pin)
			}
			return
		}
		if fallback != nil {
			// Controller unreachable: degrade to the default rule instead
			// of blackholing the flow.
			ls.DefaultRouted.Add(1)
			ls.executeActions(pkt, inPort, fallback, 0)
		}
		return
	}
	ls.executeActions(pkt, inPort, actions, 0)
}

func (ls *LiveSwitch) executeActions(pkt *packet.Packet, inPort uint32, actions []openflow.Action, depth int) {
	if depth > 4 {
		return
	}
	for i := range actions {
		a := &actions[i]
		switch a.Type {
		case openflow.ActionTypePushMPLS:
			pkt.PushMPLS(a.MPLSLabel)
		case openflow.ActionTypePopMPLS:
			if _, err := pkt.PopMPLS(); err != nil {
				return
			}
		case openflow.ActionTypeGroup:
			// Select the bucket under the lock: GroupModify mutates the
			// Group's Type/Buckets in place from the control goroutine.
			// The bucket's Actions slice is immutable once installed
			// (modify swaps whole bucket slices), so it is safe to keep
			// after unlocking.
			ls.mu.Lock()
			var bucketActions []openflow.Action
			if g := ls.pipeline.Groups.Get(a.GroupID); g != nil {
				if b := g.SelectBucket(pkt.FlowKey().Hash()); b != nil {
					bucketActions = b.Actions
				}
			}
			ls.mu.Unlock()
			if bucketActions != nil {
				ls.executeActions(pkt, inPort, bucketActions, depth+1)
			}
		case openflow.ActionTypeOutput:
			ls.mu.Lock()
			out := ls.outputs[a.Port]
			ls.mu.Unlock()
			if out != nil {
				out(pkt.Clone())
			}
		}
	}
}

// DialAndServe connects to the controller, performs the handshake, and
// serves controller messages until the context is canceled or the
// connection drops.
func (ls *LiveSwitch) DialAndServe(ctx context.Context, addr string) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	conn := NewConn(nc)
	ls.mu.Lock()
	ls.conns[conn] = &connRole{role: openflow.RoleEqual}
	ls.mu.Unlock()
	defer func() {
		ls.mu.Lock()
		delete(ls.conns, conn)
		ls.mu.Unlock()
		conn.Close()
	}()

	if _, err := conn.Send(&openflow.Hello{}); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	for {
		msg, xid, err := conn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := ls.handle(conn, msg, xid); err != nil {
			return err
		}
	}
}

// connStableAfter is how long a connection must survive before the next
// failure restarts the backoff schedule from its base interval.
const connStableAfter = 10 * time.Second

// DialAndServeRetry runs DialAndServe in a loop, reconnecting after each
// failure with exponential backoff and jitter from bo (a conventional
// 100ms→30s schedule when nil). A connection that stays up for at least
// connStableAfter resets the schedule, so a controller that crash-loops
// hourly is not punished for last month's outage. notify, when non-nil,
// observes each failure and the wait before the next attempt. Returns
// only when the context is canceled.
func (ls *LiveSwitch) DialAndServeRetry(ctx context.Context, addr string, bo *fault.Backoff, notify func(err error, next time.Duration)) error {
	if bo == nil {
		bo = fault.NewBackoff(100*time.Millisecond, 30*time.Second, time.Now().UnixNano())
	}
	for {
		started := time.Now()
		err := ls.DialAndServe(ctx, addr)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(started) >= connStableAfter {
			bo.Reset()
		}
		ls.Reconnects.Add(1)
		wait := bo.Next()
		if notify != nil {
			notify(err, wait)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// roleOf reports the role of a controller connection. Connections that
// never negotiated a role (including test harnesses driving handle
// directly) default to Equal.
func (ls *LiveSwitch) roleOf(conn *Conn) uint32 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if r := ls.conns[conn]; r != nil {
		return r.role
	}
	return openflow.RoleEqual
}

func (ls *LiveSwitch) handle(conn *Conn, msg openflow.Message, xid uint32) error {
	// Slave controllers hold a read-only view: controller-to-switch
	// state mutations bounce with OFPBRC_IS_SLAVE (OF 1.3 §6.3).
	switch msg.(type) {
	case *openflow.FlowMod, *openflow.GroupMod, *openflow.PacketOut:
		if ls.roleOf(conn) == openflow.RoleSlave {
			ls.SlaveDenied.Add(1)
			return conn.SendXID(&openflow.Error{
				ErrType: openflow.ErrTypeBadRequest,
				Code:    openflow.ErrCodeIsSlave,
			}, xid)
		}
	}
	switch m := msg.(type) {
	case *openflow.Hello:
		return nil
	case *openflow.FeaturesRequest:
		ls.mu.Lock()
		n := uint8(len(ls.pipeline.Tables))
		ls.mu.Unlock()
		return conn.SendXID(&openflow.FeaturesReply{DatapathID: ls.DPID, NTables: n}, xid)
	case *openflow.EchoRequest:
		return conn.SendXID(&openflow.EchoReply{Data: m.Data}, xid)
	case *openflow.FlowMod:
		return ls.applyFlowMod(conn, m, xid)
	case *openflow.GroupMod:
		ls.mu.Lock()
		err := ls.pipeline.Groups.Apply(m)
		ls.mu.Unlock()
		if err != nil {
			return conn.SendXID(&openflow.Error{ErrType: openflow.ErrTypeGroupModFailed}, xid)
		}
		return nil
	case *openflow.PacketOut:
		pkt, err := packet.Parse(m.Data)
		if err != nil {
			return nil // tolerate malformed injected data
		}
		ls.executeActions(pkt, m.InPort, m.Actions, 0)
		return nil
	case *openflow.BarrierRequest:
		return conn.SendXID(&openflow.BarrierReply{}, xid)
	case *openflow.MultipartRequest:
		return ls.replyStats(conn, m, xid)
	case *openflow.RoleRequest:
		return ls.applyRoleRequest(conn, m, xid)
	}
	return nil
}

// applyRoleRequest negotiates this connection's controller role.
// Master/slave claims carry a generation id; claims older than the
// highest generation seen are fenced off so a partitioned ex-master
// cannot reclaim the switch (OF 1.3 §6.3). A successful master claim
// demotes every other master connection to slave.
func (ls *LiveSwitch) applyRoleRequest(conn *Conn, m *openflow.RoleRequest, xid uint32) error {
	ls.mu.Lock()
	cr := ls.conns[conn]
	if cr == nil {
		cr = &connRole{role: openflow.RoleEqual}
		ls.conns[conn] = cr
	}
	switch m.Role {
	case openflow.RoleMaster, openflow.RoleSlave:
		if ls.genSeen && int64(m.GenerationID-ls.genID) < 0 {
			ls.mu.Unlock()
			ls.RoleStale.Add(1)
			return conn.SendXID(&openflow.Error{
				ErrType: openflow.ErrTypeRoleRequestFailed,
				Code:    openflow.ErrCodeRoleStale,
			}, xid)
		}
		ls.genID = m.GenerationID
		ls.genSeen = true
		if m.Role == openflow.RoleMaster {
			for other, r := range ls.conns {
				if other != conn && r.role == openflow.RoleMaster {
					r.role = openflow.RoleSlave
				}
			}
		}
		cr.role = m.Role
	case openflow.RoleEqual:
		cr.role = openflow.RoleEqual
	}
	role, gen := cr.role, ls.genID
	ls.mu.Unlock()
	return conn.SendXID(&openflow.RoleReply{Role: role, GenerationID: gen}, xid)
}

func (ls *LiveSwitch) applyFlowMod(conn *Conn, m *openflow.FlowMod, xid uint32) error {
	tableFull := false
	ls.mu.Lock()
	if tbl := ls.pipeline.Table(m.TableID); tbl != nil {
		switch m.Command {
		case openflow.FlowAdd, openflow.FlowModify:
			rule := &flowtable.Rule{
				Priority:     m.Priority,
				Match:        m.Match,
				Instructions: m.Instructions,
				IdleTimeout:  time.Duration(m.IdleTimeout) * time.Second,
				HardTimeout:  time.Duration(m.HardTimeout) * time.Second,
				Cookie:       m.Cookie,
				Flags:        m.Flags,
				Installed:    ls.now(),
			}
			if err := tbl.Insert(rule); err != nil {
				tableFull = true
			} else {
				ls.Installed.Add(1)
			}
		case openflow.FlowDelete, openflow.FlowDeleteStrict:
			tbl.Delete(&m.Match, m.Priority, m.Command == openflow.FlowDeleteStrict)
		}
	}
	ls.mu.Unlock()
	if tableFull {
		return conn.SendXID(&openflow.Error{
			ErrType: openflow.ErrTypeFlowModFailed,
			Code:    openflow.ErrCodeTableFull,
		}, xid)
	}
	return nil
}

func (ls *LiveSwitch) replyStats(conn *Conn, req *openflow.MultipartRequest, xid uint32) error {
	if req.MPType != openflow.MultipartFlow || req.Flow == nil {
		return nil
	}
	ls.mu.Lock()
	reply := &openflow.MultipartReply{MPType: openflow.MultipartFlow}
	now := ls.now()
	for _, tbl := range ls.pipeline.Tables {
		if req.Flow.TableID != 0xff && tbl.ID != req.Flow.TableID {
			continue
		}
		for _, r := range tbl.Rules() {
			reply.Flows = append(reply.Flows, openflow.FlowStats{
				TableID:     r.TableID,
				DurationSec: uint32((now - r.Installed) / time.Second),
				Priority:    r.Priority,
				Cookie:      r.Cookie,
				PacketCount: r.Packets,
				ByteCount:   r.Bytes,
				Match:       r.Match,
			})
		}
	}
	ls.mu.Unlock()
	return conn.SendXID(reply, xid)
}

// RuleCount returns the number of installed rules across tables.
func (ls *LiveSwitch) RuleCount() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	n := 0
	for _, t := range ls.pipeline.Tables {
		n += t.Len()
	}
	return n
}
