package ofnet

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scotch/internal/flowtable"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
)

// LiveSwitch is a wall-clock software OpenFlow switch: the same flow-table
// pipeline the simulator uses, driven by real goroutines and connected to
// a real controller over TCP. Output ports are callbacks, so switches can
// be wired to each other, to packet sockets, or to test sinks.
type LiveSwitch struct {
	DPID uint64

	mu       sync.Mutex
	pipeline *flowtable.Pipeline
	outputs  map[uint32]func(*packet.Packet)
	start    time.Time
	conn     *Conn

	// Stats. Atomics, not mu-guarded fields: the data plane (Inject, any
	// goroutine) and the control loop (DialAndServe's goroutine) both
	// update them, and monitors read them without stalling either.
	Forwarded atomic.Uint64
	Misses    atomic.Uint64
	Installed atomic.Uint64
}

// NewLiveSwitch creates a switch with the given number of flow tables.
func NewLiveSwitch(dpid uint64, tables int) *LiveSwitch {
	return &LiveSwitch{
		DPID:     dpid,
		pipeline: flowtable.NewPipeline(tables, 0),
		outputs:  make(map[uint32]func(*packet.Packet)),
		start:    time.Now(),
	}
}

// RegisterPort wires an output port to a delivery function.
func (ls *LiveSwitch) RegisterPort(id uint32, deliver func(*packet.Packet)) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.outputs[id] = deliver
}

func (ls *LiveSwitch) now() sim.Time { return time.Since(ls.start) }

// Inject offers a packet to the data plane on the given ingress port.
// Misses are punted to the controller when connected.
func (ls *LiveSwitch) Inject(pkt *packet.Packet, inPort uint32) {
	ls.mu.Lock()
	res := ls.pipeline.Process(pkt, inPort, ls.now())
	var conn *Conn
	if res.Miss {
		ls.Misses.Add(1)
		conn = ls.conn
	} else {
		ls.Forwarded.Add(1)
	}
	actions := res.Actions
	ls.mu.Unlock()

	if res.Miss {
		if conn != nil {
			pin := &openflow.PacketIn{
				BufferID: 0xffffffff,
				TotalLen: uint16(pkt.Size),
				Reason:   openflow.ReasonNoMatch,
				Match:    openflow.Match{Fields: openflow.FieldInPort, InPort: inPort},
				Data:     pkt.Marshal(),
			}
			// A send failure here means the control connection dropped;
			// DialAndServe's read loop surfaces it.
			conn.Send(pin)
		}
		return
	}
	ls.executeActions(pkt, inPort, actions, 0)
}

func (ls *LiveSwitch) executeActions(pkt *packet.Packet, inPort uint32, actions []openflow.Action, depth int) {
	if depth > 4 {
		return
	}
	for i := range actions {
		a := &actions[i]
		switch a.Type {
		case openflow.ActionTypePushMPLS:
			pkt.PushMPLS(a.MPLSLabel)
		case openflow.ActionTypePopMPLS:
			if _, err := pkt.PopMPLS(); err != nil {
				return
			}
		case openflow.ActionTypeGroup:
			// Select the bucket under the lock: GroupModify mutates the
			// Group's Type/Buckets in place from the control goroutine.
			// The bucket's Actions slice is immutable once installed
			// (modify swaps whole bucket slices), so it is safe to keep
			// after unlocking.
			ls.mu.Lock()
			var bucketActions []openflow.Action
			if g := ls.pipeline.Groups.Get(a.GroupID); g != nil {
				if b := g.SelectBucket(pkt.FlowKey().Hash()); b != nil {
					bucketActions = b.Actions
				}
			}
			ls.mu.Unlock()
			if bucketActions != nil {
				ls.executeActions(pkt, inPort, bucketActions, depth+1)
			}
		case openflow.ActionTypeOutput:
			ls.mu.Lock()
			out := ls.outputs[a.Port]
			ls.mu.Unlock()
			if out != nil {
				out(pkt.Clone())
			}
		}
	}
}

// DialAndServe connects to the controller, performs the handshake, and
// serves controller messages until the context is canceled or the
// connection drops.
func (ls *LiveSwitch) DialAndServe(ctx context.Context, addr string) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	conn := NewConn(nc)
	ls.mu.Lock()
	ls.conn = conn
	ls.mu.Unlock()
	defer func() {
		ls.mu.Lock()
		ls.conn = nil
		ls.mu.Unlock()
		conn.Close()
	}()

	if _, err := conn.Send(&openflow.Hello{}); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	for {
		msg, xid, err := conn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := ls.handle(conn, msg, xid); err != nil {
			return err
		}
	}
}

func (ls *LiveSwitch) handle(conn *Conn, msg openflow.Message, xid uint32) error {
	switch m := msg.(type) {
	case *openflow.Hello:
		return nil
	case *openflow.FeaturesRequest:
		ls.mu.Lock()
		n := uint8(len(ls.pipeline.Tables))
		ls.mu.Unlock()
		return conn.SendXID(&openflow.FeaturesReply{DatapathID: ls.DPID, NTables: n}, xid)
	case *openflow.EchoRequest:
		return conn.SendXID(&openflow.EchoReply{Data: m.Data}, xid)
	case *openflow.FlowMod:
		return ls.applyFlowMod(conn, m, xid)
	case *openflow.GroupMod:
		ls.mu.Lock()
		err := ls.pipeline.Groups.Apply(m)
		ls.mu.Unlock()
		if err != nil {
			return conn.SendXID(&openflow.Error{ErrType: openflow.ErrTypeGroupModFailed}, xid)
		}
		return nil
	case *openflow.PacketOut:
		pkt, err := packet.Parse(m.Data)
		if err != nil {
			return nil // tolerate malformed injected data
		}
		ls.executeActions(pkt, m.InPort, m.Actions, 0)
		return nil
	case *openflow.BarrierRequest:
		return conn.SendXID(&openflow.BarrierReply{}, xid)
	case *openflow.MultipartRequest:
		return ls.replyStats(conn, m, xid)
	}
	return nil
}

func (ls *LiveSwitch) applyFlowMod(conn *Conn, m *openflow.FlowMod, xid uint32) error {
	tableFull := false
	ls.mu.Lock()
	if tbl := ls.pipeline.Table(m.TableID); tbl != nil {
		switch m.Command {
		case openflow.FlowAdd, openflow.FlowModify:
			rule := &flowtable.Rule{
				Priority:     m.Priority,
				Match:        m.Match,
				Instructions: m.Instructions,
				IdleTimeout:  time.Duration(m.IdleTimeout) * time.Second,
				HardTimeout:  time.Duration(m.HardTimeout) * time.Second,
				Cookie:       m.Cookie,
				Flags:        m.Flags,
				Installed:    ls.now(),
			}
			if err := tbl.Insert(rule); err != nil {
				tableFull = true
			} else {
				ls.Installed.Add(1)
			}
		case openflow.FlowDelete, openflow.FlowDeleteStrict:
			tbl.Delete(&m.Match, m.Priority, m.Command == openflow.FlowDeleteStrict)
		}
	}
	ls.mu.Unlock()
	if tableFull {
		return conn.SendXID(&openflow.Error{
			ErrType: openflow.ErrTypeFlowModFailed,
			Code:    openflow.ErrCodeTableFull,
		}, xid)
	}
	return nil
}

func (ls *LiveSwitch) replyStats(conn *Conn, req *openflow.MultipartRequest, xid uint32) error {
	if req.MPType != openflow.MultipartFlow || req.Flow == nil {
		return nil
	}
	ls.mu.Lock()
	reply := &openflow.MultipartReply{MPType: openflow.MultipartFlow}
	now := ls.now()
	for _, tbl := range ls.pipeline.Tables {
		if req.Flow.TableID != 0xff && tbl.ID != req.Flow.TableID {
			continue
		}
		for _, r := range tbl.Rules() {
			reply.Flows = append(reply.Flows, openflow.FlowStats{
				TableID:     r.TableID,
				DurationSec: uint32((now - r.Installed) / time.Second),
				Priority:    r.Priority,
				Cookie:      r.Cookie,
				PacketCount: r.Packets,
				ByteCount:   r.Bytes,
				Match:       r.Match,
			})
		}
	}
	ls.mu.Unlock()
	return conn.SendXID(reply, xid)
}

// RuleCount returns the number of installed rules across tables.
func (ls *LiveSwitch) RuleCount() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	n := 0
	for _, t := range ls.pipeline.Tables {
		n += t.Len()
	}
	return n
}
