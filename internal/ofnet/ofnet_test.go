package ofnet

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/openflow"
	"scotch/internal/packet"
)

// reactiveHandler is a minimal reactive controller for tests: every
// Packet-In gets an exact-match rule toward a fixed port plus a
// Packet-Out.
type reactiveHandler struct {
	mu        sync.Mutex
	connected []uint64
	gone      []uint64
	packetIns int
	outPort   uint32
	ready     chan uint64
}

func newReactiveHandler(outPort uint32) *reactiveHandler {
	return &reactiveHandler{outPort: outPort, ready: make(chan uint64, 8)}
}

func (h *reactiveHandler) SwitchConnected(sw *SwitchConn) {
	h.mu.Lock()
	h.connected = append(h.connected, sw.DPID)
	h.mu.Unlock()
	h.ready <- sw.DPID
}

func (h *reactiveHandler) SwitchGone(sw *SwitchConn) {
	h.mu.Lock()
	h.gone = append(h.gone, sw.DPID)
	h.mu.Unlock()
}

func (h *reactiveHandler) PacketIn(sw *SwitchConn, pin *openflow.PacketIn) {
	h.mu.Lock()
	h.packetIns++
	h.mu.Unlock()
	pkt, err := packet.Parse(pin.Data)
	if err != nil {
		return
	}
	key := pkt.FlowKey()
	match := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst | openflow.FieldTCPSrc | openflow.FieldTCPDst,
		EthType: packet.EtherTypeIPv4, IPProto: key.Proto,
		IPv4Src: key.Src, IPv4Dst: key.Dst, TCPSrc: key.SrcPort, TCPDst: key.DstPort,
	}
	sw.Install(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 100, Match: match,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(h.outPort))},
	})
	sw.PacketOut(&openflow.PacketOut{
		BufferID: 0xffffffff, InPort: pin.Match.InPort,
		Actions: []openflow.Action{openflow.OutputAction(h.outPort)},
		Data:    pin.Data,
	})
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestHandshakeAndReactiveForwardingOverTCP(t *testing.T) {
	h := newReactiveHandler(2)
	ctrl, err := NewController("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	ls := NewLiveSwitch(0xabc, 2)
	var mu sync.Mutex
	var delivered []*packet.Packet
	ls.RegisterPort(2, func(p *packet.Packet) {
		mu.Lock()
		delivered = append(delivered, p)
		mu.Unlock()
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ls.DialAndServe(ctx, ctrl.Addr()) }()

	select {
	case dpid := <-h.ready:
		if dpid != 0xabc {
			t.Fatalf("connected dpid = %#x", dpid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake timeout")
	}
	if sw := ctrl.Switch(0xabc); sw == nil {
		t.Fatal("switch not registered at controller")
	}

	// First packet: miss -> Packet-In over TCP -> FlowMod + PacketOut back.
	p := packet.NewTCP(netaddr.MakeIPv4(10, 0, 0, 1), netaddr.MakeIPv4(10, 0, 1, 1), 1000, 80, packet.FlagSYN)
	ls.Inject(p.Clone(), 1)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) >= 1
	}, "packet-out delivery")
	waitFor(t, func() bool { return ls.RuleCount() == 1 }, "flow rule installation")

	// Subsequent packets forward in the data plane with no controller
	// round trip.
	h.mu.Lock()
	pinsBefore := h.packetIns
	h.mu.Unlock()
	ls.Inject(p.Clone(), 1)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) >= 2
	}, "hardware-path delivery")
	h.mu.Lock()
	if h.packetIns != pinsBefore {
		t.Fatalf("extra packet-in after rule install")
	}
	h.mu.Unlock()

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not shut down")
	}
}

func TestMultipleSwitchesAndDisconnect(t *testing.T) {
	h := newReactiveHandler(1)
	ctrl, err := NewController("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var agents []*LiveSwitch
	for i := 1; i <= 3; i++ {
		ls := NewLiveSwitch(uint64(i), 1)
		agents = append(agents, ls)
		go ls.DialAndServe(ctx, ctrl.Addr())
	}
	for i := 0; i < 3; i++ {
		select {
		case <-h.ready:
		case <-time.After(5 * time.Second):
			t.Fatal("handshake timeout")
		}
	}
	if got := len(ctrl.Switches()); got != 3 {
		t.Fatalf("connected switches = %d", got)
	}

	cancel()
	waitFor(t, func() bool { return len(ctrl.Switches()) == 0 }, "disconnect cleanup")
	h.mu.Lock()
	gone := len(h.gone)
	h.mu.Unlock()
	if gone != 3 {
		t.Fatalf("SwitchGone fired %d times, want 3", gone)
	}
	_ = agents
}

func TestEchoKeepalive(t *testing.T) {
	h := newReactiveHandler(1)
	ctrl, err := NewController("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.EchoInterval = 50 * time.Millisecond
	defer ctrl.Close()

	ls := NewLiveSwitch(9, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ls.DialAndServe(ctx, ctrl.Addr())
	<-h.ready
	sw := ctrl.Switch(9)
	waitFor(t, func() bool { return sw.LastEcho().After(time.Time{}.Add(time.Nanosecond)) }, "echo reply")
}

func TestGroupAndStatsOverTCP(t *testing.T) {
	h := newReactiveHandler(1)
	ctrl, err := NewController("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	ls := NewLiveSwitch(5, 1)
	var mu sync.Mutex
	counts := map[uint32]int{}
	for _, port := range []uint32{11, 12} {
		port := port
		ls.RegisterPort(port, func(*packet.Packet) {
			mu.Lock()
			counts[port]++
			mu.Unlock()
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ls.DialAndServe(ctx, ctrl.Addr())
	<-h.ready
	sw := ctrl.Switch(5)

	// Install a select group and a rule that uses it.
	if err := sw.GroupMod(&openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 1,
		Buckets: []openflow.Bucket{
			{Actions: []openflow.Action{openflow.OutputAction(11)}},
			{Actions: []openflow.Action{openflow.OutputAction(12)}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Install(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.GroupAction(1))},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ls.RuleCount() == 1 }, "rule install over TCP")

	for i := 0; i < 100; i++ {
		p := packet.NewTCP(netaddr.IPv4(i), netaddr.MakeIPv4(10, 0, 1, 1), uint16(i), 80, 0)
		ls.Inject(p, 1)
	}
	mu.Lock()
	a, b := counts[11], counts[12]
	mu.Unlock()
	if a+b != 100 || a == 0 || b == 0 {
		t.Fatalf("select split = %d/%d", a, b)
	}
}

func TestFlowStatsOverTCP(t *testing.T) {
	h := newReactiveHandler(1)
	ctrl, err := NewController("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	ls := NewLiveSwitch(11, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ls.DialAndServe(ctx, ctrl.Addr())
	<-h.ready
	sw := ctrl.Switch(11)
	if err := sw.Install(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 3,
		Match:        openflow.Match{Fields: openflow.FieldIPv4Dst, IPv4Dst: netaddr.MakeIPv4(10, 0, 1, 1)},
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.OutputAction(1))},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ls.RuleCount() == 1 }, "rule install")

	// Drive some packets so the counters move.
	for i := 0; i < 5; i++ {
		ls.Inject(packet.NewTCP(netaddr.IPv4(i), netaddr.MakeIPv4(10, 0, 1, 1), 1, 80, 0), 2)
	}

	// Exercise the stats reply path over an in-memory connection: the
	// handler writes the framed MultipartReply, the peer decodes it.
	done := make(chan int, 1)
	go func() {
		// Use an in-memory pipe pair to call ls.handle directly.
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		conn := NewConn(a)
		go func() {
			msg, _, err := openflow.ReadMessage(b)
			if err != nil {
				done <- -1
				return
			}
			rep, ok := msg.(*openflow.MultipartReply)
			if !ok {
				done <- -2
				return
			}
			done <- int(rep.Flows[0].PacketCount)
		}()
		ls.handle(conn, &openflow.MultipartRequest{
			MPType: openflow.MultipartFlow,
			Flow:   &openflow.FlowStatsRequest{TableID: 0xff},
		}, 77)
	}()
	select {
	case n := <-done:
		if n != 5 {
			t.Fatalf("stats packet count = %d, want 5", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stats reply timeout")
	}
}

// TestConcurrentDataPlaneAndGroupMods hammers the data plane from several
// goroutines while the control plane rewrites the select group and installs
// rules, with a monitor reading the stats counters throughout. Run under
// -race this pins down the locking contract: group bucket selection happens
// under the switch lock (GroupModify mutates the Group in place), bucket
// action slices are immutable once installed, and the stats fields are
// atomics.
func TestConcurrentDataPlaneAndGroupMods(t *testing.T) {
	ls := NewLiveSwitch(21, 1)
	var total sync.WaitGroup
	var hits [2]int64
	var hitsMu sync.Mutex
	ls.RegisterPort(11, func(*packet.Packet) { hitsMu.Lock(); hits[0]++; hitsMu.Unlock() })
	ls.RegisterPort(12, func(*packet.Packet) { hitsMu.Lock(); hits[1]++; hitsMu.Unlock() })

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)
	conn := NewConn(a)
	if err := ls.handle(conn, &openflow.GroupMod{
		Command: openflow.GroupAdd, GroupType: openflow.GroupTypeSelect, GroupID: 1,
		Buckets: []openflow.Bucket{
			{Actions: []openflow.Action{openflow.OutputAction(11)}},
			{Actions: []openflow.Action{openflow.OutputAction(12)}},
		},
	}, 1); err != nil {
		t.Fatal(err)
	}
	if err := ls.handle(conn, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(openflow.GroupAction(1))},
	}, 2); err != nil {
		t.Fatal(err)
	}

	const injectors, perInjector = 4, 300
	stop := make(chan struct{})

	// Control plane: keep rewriting the group's buckets in place.
	total.Add(1)
	go func() {
		defer total.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := uint16(1 + i%3)
			ls.handle(conn, &openflow.GroupMod{
				Command: openflow.GroupModify, GroupType: openflow.GroupTypeSelect, GroupID: 1,
				Buckets: []openflow.Bucket{
					{Weight: w, Actions: []openflow.Action{openflow.OutputAction(11)}},
					{Weight: 1, Actions: []openflow.Action{openflow.OutputAction(12)}},
				},
			}, uint32(i))
		}
	}()
	// Monitor: concurrent stats reads.
	total.Add(1)
	go func() {
		defer total.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = ls.Forwarded.Load() + ls.Misses.Load() + ls.Installed.Load()
				_ = ls.RuleCount()
			}
		}
	}()

	var inj sync.WaitGroup
	for g := 0; g < injectors; g++ {
		inj.Add(1)
		go func(g int) {
			defer inj.Done()
			for i := 0; i < perInjector; i++ {
				p := packet.NewTCP(netaddr.IPv4(g*perInjector+i), netaddr.MakeIPv4(10, 0, 1, 1), uint16(i), 80, 0)
				ls.Inject(p, 1)
			}
		}(g)
	}
	inj.Wait()
	close(stop)
	total.Wait()

	hitsMu.Lock()
	sum := hits[0] + hits[1]
	hitsMu.Unlock()
	if sum != injectors*perInjector {
		t.Fatalf("delivered %d packets, want %d", sum, injectors*perInjector)
	}
	if got := ls.Forwarded.Load(); got != injectors*perInjector {
		t.Fatalf("Forwarded = %d, want %d", got, injectors*perInjector)
	}
}

func TestLiveSwitchMPLSActions(t *testing.T) {
	ls := NewLiveSwitch(3, 1)
	var got []*packet.Packet
	var mu sync.Mutex
	ls.RegisterPort(9, func(p *packet.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	// Install a rule directly (no controller): push a label then output.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)
	conn := NewConn(a)
	if err := ls.handle(conn, &openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 1,
		Instructions: []openflow.Instruction{openflow.ApplyActions(
			openflow.PushMPLSAction(42), openflow.OutputAction(9))},
	}, 1); err != nil {
		t.Fatal(err)
	}
	ls.Inject(packet.NewTCP(netaddr.MakeIPv4(1, 1, 1, 1), netaddr.MakeIPv4(2, 2, 2, 2), 1, 2, 0), 1)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if len(got[0].MPLS) != 1 || got[0].MPLS[0].Label != 42 {
		t.Fatalf("MPLS stack = %+v", got[0].MPLS)
	}
}
