// Command scotchsim runs the paper-reproduction experiments.
//
// Usage:
//
//	scotchsim [-parallel N] list             list experiment ids
//	scotchsim [-parallel N] run <id>...      run specific experiments (e.g. fig3 fig11)
//	  run flags: -trace out.json             export control-path Chrome trace JSON
//	             -stages                     print per-stage latency breakdown
//	             -health                     print per-rig end-of-run health digests
//	             -health-json out.json       write the digests as JSON
//	             -profile-dir DIR            pprof capture on SLO-breach transitions
//	             -statusz-addr :9090         live /statusz + /metrics while running
//	             -balance                    advisory joint balancer per rig (decision log)
//	scotchsim [-parallel N] all              run every experiment
//	scotchsim [-parallel N] bench [-out F]   measure the suite, write BENCH_scotch.json
//
// Experiments execute on a worker pool of -parallel workers (default:
// runtime.NumCPU()). Each experiment owns a private deterministic engine,
// so the concatenated output is byte-identical to a serial run regardless
// of parallelism; only the per-experiment wall-time lines vary. Tracing
// (-trace / -stages) and health observation (-health and friends) force
// serial execution so collected traces and digests line up with output
// order; the experiments' own tables are byte-unchanged either way.
//
// -shards N additionally parallelizes INSIDE a run: experiments marked
// shardable build their topology on a partitioned event engine — one lane
// per vSwitch — executed by N workers under a conservative lookahead
// protocol. Output stays byte-identical to the serial engine at any shard
// count; experiments that mutate the topology mid-run (elastic, chaos),
// enable devolution, or run with tracing/observation armed fall back to
// the serial engine automatically.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"scotch/internal/bench"
	"scotch/internal/experiments"
	"scotch/internal/obs"
	"scotch/internal/telemetry"
)

func main() {
	parallel := flag.Int("parallel", runtime.NumCPU(), "number of experiments to run concurrently")
	shards := flag.Int("shards", 0, "worker goroutines per shardable experiment's partitioned engine (0 = serial engine)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	experiments.SetShards(*shards)
	switch flag.Arg(0) {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-28s %s\n", e.ID, e.Title)
		}
	case "all":
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		runIDs(ids, *parallel)
	case "run":
		runCmd(flag.Args()[1:], *parallel)
	case "bench":
		benchCmd(flag.Args()[1:], *parallel)
	default:
		usage()
		os.Exit(2)
	}
}

// runCmd handles `scotchsim run [flags] <id>...`; flags and ids may be
// interleaved in any order.
func runCmd(args []string, parallel int) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	tracePath := fs.String("trace", "", "write control-path Chrome trace-event JSON to this file")
	stages := fs.Bool("stages", false, "print the per-stage control-path latency breakdown after the normal output")
	health := fs.Bool("health", false, "print an end-of-run health digest (load timelines, SLO verdicts, burn peaks) per rig")
	healthJSON := fs.String("health-json", "", "write the collected health digests as JSON to this file (implies observation)")
	profileDir := fs.String("profile-dir", "", "capture heap+CPU pprof profiles into this directory on SLO-breach transitions")
	statuszAddr := fs.String("statusz-addr", "", "serve a live /statusz (plus /metrics and /debug/pprof) on this address while experiments run")
	advise := fs.Bool("balance", false, "run an advisory joint balancer per rig and print its decision log (implies observation, never actuates)")
	// The flag package stops at the first non-flag argument; re-parse so
	// `scotchsim run fig14 -stages` works as naturally as the reverse order.
	var ids []string
	for {
		fs.Parse(args)
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		ids = append(ids, args[0])
		args = args[1:]
	}
	if len(ids) == 0 {
		usage()
		os.Exit(2)
	}
	tracing := *tracePath != "" || *stages
	if tracing {
		// One private tracer per rig, collected in build order; serial
		// execution keeps that order aligned with the output order.
		experiments.EnableTracing()
		defer experiments.DisableTracing()
		parallel = 1
	}
	observing := *health || *healthJSON != "" || *profileDir != "" || *statuszAddr != "" || *advise
	if observing {
		// Like tracing: one observatory per rig in build order, so serial
		// execution keeps digests aligned with the output order (and the
		// /statusz "current rig" pointer meaningful).
		experiments.EnableObservatoryWith(obs.Config{ProfileDir: *profileDir})
		defer experiments.DisableObservatory()
		parallel = 1
	}
	if *advise {
		// Advise mode reads each rig's observatory but never actuates, so
		// the experiments' own output is byte-unchanged.
		experiments.EnableBalanceAdvisor()
		defer experiments.DisableBalanceAdvisor()
	}
	if *statuszAddr != "" {
		srv, err := telemetry.StartServer(*statuszAddr, telemetry.NewRegistry(),
			telemetry.WithHandler("/statusz", obs.Handler(experiments.CurrentClusterView)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "statusz on http://%s/statusz\n", srv.Addr())
	}
	runIDs(ids, parallel)
	if *advise {
		writeAdvice()
	}
	if observing {
		writeHealth(*health, *healthJSON)
	}
	if !tracing {
		return
	}
	traces := experiments.CollectedTraces()
	if len(traces) == 0 {
		fmt.Fprintln(os.Stderr, "note: the selected experiments built no traced rigs; nothing was recorded")
		return
	}
	if *stages {
		for _, nt := range traces {
			fmt.Printf("control-path stages (%s):\n", nt.Name)
			nt.Tracer.WriteStageSummary(os.Stdout)
			fmt.Println()
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		werr := telemetry.WriteChromeTrace(f, traces...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "error:", werr)
			os.Exit(1)
		}
		spans := 0
		for _, nt := range traces {
			spans += len(nt.Tracer.Spans())
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d traced runs, %d spans)\n", *tracePath, len(traces), spans)
	}
}

// writeAdvice prints each rig's advisory balancer decision log after the
// experiments' own output, in build order.
func writeAdvice() {
	runs := experiments.CollectedBalance()
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "note: the selected experiments built no advised rigs; no balance advice to report")
		return
	}
	for _, nb := range runs {
		log := nb.B.Log()
		fmt.Printf("balance advice (%s): %d decisions\n", nb.Name, len(log))
		experiments.WriteDecisions(os.Stdout, log)
		fmt.Println()
	}
}

// writeHealth renders the collected per-rig health digests: as text to
// stdout when -health is set, and as a JSON array to jsonPath when
// -health-json names a file.
func writeHealth(text bool, jsonPath string) {
	runs := experiments.CollectedHealth()
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "note: the selected experiments built no observed rigs; no health to report")
		return
	}
	digests := make([]*obs.Digest, 0, len(runs))
	for _, nh := range runs {
		digests = append(digests, nh.Obs.Digest(nh.Name))
	}
	if text {
		for _, d := range digests {
			if err := d.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if jsonPath == "" {
		return
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(digests)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "error:", werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d health digests)\n", jsonPath, len(digests))
}

// runIDs executes experiments on the worker pool and streams each result in
// submission order: the experiment's captured output (banner + table),
// followed by a wall-time line. Output bytes are identical at any
// parallelism; timings naturally vary.
func runIDs(ids []string, parallel int) {
	results, err := experiments.RunAll(context.Background(), ids, parallel)
	for _, r := range results {
		if r.ID == "" {
			continue // never started: an earlier experiment failed
		}
		os.Stdout.Write(r.Output)
		if r.Err == nil {
			fmt.Printf("(%s completed in %v wall time)\n\n", r.ID, r.Wall.Round(time.Millisecond))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func benchCmd(args []string, parallel int) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_scotch.json", "report output path")
	fs.Parse(args)

	ids := fs.Args()
	fmt.Fprintf(os.Stderr, "benchmarking %s serially, then with %d workers...\n",
		describe(ids), parallel)
	report, err := bench.Collect(context.Background(), ids, parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("serial %v, parallel %v on %d workers (%d cores): %.2fx speedup, outputs identical: %v\n",
		time.Duration(report.SerialWallNs).Round(time.Millisecond),
		time.Duration(report.ParallelWallNs).Round(time.Millisecond),
		report.Parallelism, report.Cores, report.Speedup, report.OutputIdentical)
	fmt.Printf("wrote %s\n", *out)
}

func describe(ids []string) string {
	if len(ids) == 0 {
		return "the full suite"
	}
	return fmt.Sprintf("%d experiments", len(ids))
}

func usage() {
	fmt.Fprintln(os.Stderr, strings.TrimSpace(`
usage: scotchsim [-parallel N] [-shards N] list | all
       scotchsim run [-trace file] [-stages] [-health] [-health-json file] [-profile-dir dir] [-statusz-addr addr] [-balance] <id>...
       scotchsim bench [-out file] [id...]
`))
}
