// Command scotchsim runs the paper-reproduction experiments.
//
// Usage:
//
//	scotchsim [-parallel N] list             list experiment ids
//	scotchsim [-parallel N] run <id>...      run specific experiments (e.g. fig3 fig11)
//	scotchsim [-parallel N] all              run every experiment
//	scotchsim [-parallel N] bench [-out F]   measure the suite, write BENCH_scotch.json
//
// Experiments execute on a worker pool of -parallel workers (default:
// runtime.NumCPU()). Each experiment owns a private deterministic engine,
// so the concatenated output is byte-identical to a serial run regardless
// of parallelism; only the per-experiment wall-time lines vary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"scotch/internal/bench"
	"scotch/internal/experiments"
)

func main() {
	parallel := flag.Int("parallel", runtime.NumCPU(), "number of experiments to run concurrently")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	switch flag.Arg(0) {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-28s %s\n", e.ID, e.Title)
		}
	case "all":
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		runIDs(ids, *parallel)
	case "run":
		if flag.NArg() < 2 {
			usage()
			os.Exit(2)
		}
		runIDs(flag.Args()[1:], *parallel)
	case "bench":
		benchCmd(flag.Args()[1:], *parallel)
	default:
		usage()
		os.Exit(2)
	}
}

// runIDs executes experiments on the worker pool and streams each result in
// submission order: the experiment's captured output (banner + table),
// followed by a wall-time line. Output bytes are identical at any
// parallelism; timings naturally vary.
func runIDs(ids []string, parallel int) {
	results, err := experiments.RunAll(context.Background(), ids, parallel)
	for _, r := range results {
		if r.ID == "" {
			continue // never started: an earlier experiment failed
		}
		os.Stdout.Write(r.Output)
		if r.Err == nil {
			fmt.Printf("(%s completed in %v wall time)\n\n", r.ID, r.Wall.Round(time.Millisecond))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func benchCmd(args []string, parallel int) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_scotch.json", "report output path")
	fs.Parse(args)

	ids := fs.Args()
	fmt.Fprintf(os.Stderr, "benchmarking %s serially, then with %d workers...\n",
		describe(ids), parallel)
	report, err := bench.Collect(context.Background(), ids, parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("serial %v, parallel %v on %d workers (%d cores): %.2fx speedup, outputs identical: %v\n",
		time.Duration(report.SerialWallNs).Round(time.Millisecond),
		time.Duration(report.ParallelWallNs).Round(time.Millisecond),
		report.Parallelism, report.Cores, report.Speedup, report.OutputIdentical)
	fmt.Printf("wrote %s\n", *out)
}

func describe(ids []string) string {
	if len(ids) == 0 {
		return "the full suite"
	}
	return fmt.Sprintf("%d experiments", len(ids))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: scotchsim [-parallel N] list | all | run <id>... | bench [-out file] [id...]`)
}
