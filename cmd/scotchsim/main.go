// Command scotchsim runs the paper-reproduction experiments.
//
// Usage:
//
//	scotchsim list             list experiment ids
//	scotchsim run <id>...      run specific experiments (e.g. fig3 fig11)
//	scotchsim all              run every experiment
package main

import (
	"fmt"
	"os"
	"time"

	"scotch/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-28s %s\n", e.ID, e.Title)
		}
	case "all":
		for _, e := range experiments.All() {
			if err := runOne(e.ID); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	case "run":
		if len(os.Args) < 3 {
			usage()
			os.Exit(2)
		}
		for _, id := range os.Args[2:] {
			if err := runOne(id); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

func runOne(id string) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'scotchsim list')", id)
	}
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	start := time.Now()
	if err := e.Run(os.Stdout); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("(%s completed in %v wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scotchsim list | all | run <id>...")
}
