// Command linkcheck verifies the repository's markdown cross-references:
// every relative link target in every tracked .md file must exist, and
// every heading anchor (the #fragment part, including same-file
// "[...](#section)" links) must resolve to a real heading in the target
// file using GitHub's anchor rules. External links (http, https, mailto)
// are not touched — the check is offline and deterministic.
//
// Usage:
//
//	go run ./cmd/linkcheck [root]
//
// root defaults to ".". Exits nonzero listing each broken link as
// file:line: message, so it slots into make/CI like a vet pass.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Optional titles ("[x](a.md \"title\")") are split off
// by the caller.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	files, err := markdownFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}

	// Anchor sets are built lazily: most files are link targets only and
	// never need their headings parsed.
	anchors := make(map[string]map[string]bool)
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := anchors[path]; ok {
			return a, nil
		}
		a, err := headingAnchors(path)
		if err != nil {
			return nil, err
		}
		anchors[path] = a
		return a, nil
	}

	var broken []string
	for _, md := range files {
		links, err := extractLinks(md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		for _, l := range links {
			target, frag, ok := splitTarget(l.target)
			if !ok {
				continue // external or non-checkable
			}
			dest := md
			if target != "" {
				dest = filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
				st, err := os.Stat(dest)
				if err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: broken link %q: no such file", md, l.line, l.target))
					continue
				}
				if st.IsDir() || frag == "" {
					continue
				}
			}
			if frag == "" || !strings.EqualFold(filepath.Ext(dest), ".md") {
				continue
			}
			a, err := anchorsOf(dest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "linkcheck:", err)
				os.Exit(1)
			}
			if !a[strings.ToLower(frag)] {
				broken = append(broken, fmt.Sprintf("%s:%d: broken anchor %q: no heading %q in %s", md, l.line, l.target, frag, dest))
			}
		}
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Println(b)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
}

// markdownFiles walks root for .md files, skipping VCS and dependency
// directories.
func markdownFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "node_modules", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// link is one inline markdown link occurrence.
type link struct {
	line   int
	target string
}

// extractLinks returns the inline link targets of a markdown file,
// ignoring fenced code blocks (``` ... ```) and inline code spans.
func extractLinks(path string) ([]link, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var links []link
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(stripCodeSpans(line), -1) {
			links = append(links, link{line: n, target: m[1]})
		}
	}
	return links, sc.Err()
}

// stripCodeSpans blanks `inline code` so link syntax inside it (example
// snippets, shell commands) is not checked.
func stripCodeSpans(s string) string {
	var b strings.Builder
	inCode := false
	for _, r := range s {
		switch {
		case r == '`':
			inCode = !inCode
			b.WriteRune(' ')
		case inCode:
			b.WriteRune(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitTarget splits a link target into a relative path and fragment.
// ok=false means the link is external or otherwise out of scope.
func splitTarget(target string) (path, frag string, ok bool) {
	if target == "" {
		return "", "", false
	}
	lower := strings.ToLower(target)
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(lower, scheme) {
			return "", "", false
		}
	}
	if strings.HasPrefix(target, "/") {
		// Site-absolute paths have no meaning in a repository.
		return "", "", false
	}
	path, frag, _ = strings.Cut(target, "#")
	return path, frag, true
}

// headingAnchors parses a markdown file's ATX headings ("## Title") into
// the anchor set GitHub generates: lowercase, punctuation dropped,
// spaces to hyphens, "-N" suffixes for duplicates.
func headingAnchors(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	anchors := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ' && text[0] != '\t') {
			continue // not an ATX heading ("#hashtag")
		}
		slug := slugify(strings.TrimSpace(text))
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors, sc.Err()
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// keep letters/digits/hyphens/underscores, turn spaces into hyphens,
// drop everything else (including backticks and punctuation).
func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r > 127: // unicode letters survive in GitHub slugs
			b.WriteRune(r)
		}
	}
	return b.String()
}
