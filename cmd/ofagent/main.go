// Command ofagent runs a live software OpenFlow switch connected to a
// controller (see ofcontrollerd) over real TCP. Received packets on each
// output port are logged; -inject sends synthetic new flows through the
// data plane so the reactive path (Packet-In, Flow-Mod, Packet-Out) can be
// observed end to end.
//
// The agent keeps itself connected: when the controller connection drops
// it reconnects with exponential backoff and jitter (100ms doubling to
// 30s), resetting the schedule once a connection proves stable. With
// -fallback-port set, table-miss packets that arrive while no controller
// is reachable are forwarded out that port instead of being dropped —
// the paper's default-rule degradation.
//
// Usage:
//
//	ofagent -addr 127.0.0.1:6633 -dpid 7 -inject 10 \
//	    [-fallback-port 2] [-telemetry-addr 127.0.0.1:9091]
//
// With -telemetry-addr set, Prometheus metrics are served on
// /metrics and Go profiling on /debug/pprof/.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scotch/internal/netaddr"
	"scotch/internal/ofnet"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6633", "controller address")
	dpid := flag.Uint64("dpid", 1, "datapath id")
	inject := flag.Int("inject", 0, "number of synthetic flows to inject after connecting")
	fallbackPort := flag.Uint("fallback-port", 0, "forward table misses out this port while the controller is unreachable (0 disables)")
	telAddr := flag.String("telemetry-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	mutexFrac := flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction sampling denominator (0 leaves mutex profiling off)")
	blockRate := flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate nanosecond threshold (0 leaves block profiling off)")
	flag.Parse()

	ls := ofnet.NewLiveSwitch(*dpid, 2)
	if *fallbackPort > 0 {
		ls.SetDefaultActions(openflow.OutputAction(uint32(*fallbackPort)))
	}
	if *telAddr != "" {
		telemetry.EnableContentionProfiling(*mutexFrac, *blockRate)
		reg := telemetry.NewRegistry()
		ls.BindMetrics(reg)
		tel, err := telemetry.StartServer(*telAddr, reg)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer tel.Close()
		log.Printf("telemetry on http://%s/metrics", tel.Addr())
	}
	for port := uint32(1); port <= 4; port++ {
		port := port
		ls.RegisterPort(port, func(p *packet.Packet) {
			log.Printf("dpid=%#x out port %d: %v", *dpid, port, p.FlowKey())
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ls.DialAndServeRetry(ctx, *addr, nil, func(err error, next time.Duration) {
			log.Printf("controller connection lost (%v); retrying in %v", err, next.Round(time.Millisecond))
		})
	}()
	log.Printf("ofagent dpid=%#x connecting to %s", *dpid, *addr)

	if *inject > 0 {
		go func() {
			time.Sleep(500 * time.Millisecond) // let the handshake finish
			for i := 0; i < *inject; i++ {
				p := packet.NewTCP(
					netaddr.MakeIPv4(10, 0, 0, byte(i+1)),
					netaddr.MakeIPv4(10, 0, 1, 1),
					uint16(1000+i), 80, packet.FlagSYN)
				ls.Inject(p, 1)
				time.Sleep(100 * time.Millisecond)
			}
			log.Printf("injected %d flows; rules installed: %d", *inject, ls.RuleCount())
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		log.Print("shutting down")
		cancel()
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			log.Fatalf("agent: %v", err)
		}
	}
}
