// Command doclint enforces the repository's documentation floor: every
// package under internal/ must carry a package comment, and in the
// packages listed in strictPkgs every exported top-level declaration —
// types, functions, methods on exported receivers, consts and vars —
// must have a doc comment. A const/var block's doc comment covers all of
// its specs.
//
// Usage:
//
//	go run ./cmd/doclint [root]
//
// root defaults to ".". Exits nonzero listing each violation as
// file:line: message, so it slots into make/CI like a vet pass.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPkgs are the directories (relative to the repo root) whose
// exported surface must be fully documented, not just present.
var strictPkgs = map[string]bool{
	"internal/scotch":  true,
	"internal/cluster": true,
	"internal/devolve": true,
	"internal/elastic": true,
	"internal/fault":   true,
	"internal/obs":     true,
	"internal/balance": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var dirs []string
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	sort.Strings(dirs)

	var violations []string
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		rel = filepath.ToSlash(rel)
		violations = append(violations, lintDir(dir, rel, strictPkgs[rel])...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintDir checks one package directory. Test files never count: a
// package comment must live in shipping code, and test helpers are free
// to be terse.
func lintDir(dir, rel string, strict bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", rel, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		if !hasPackageComment(pkg) {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", rel, pkg.Name))
		}
		if !strict {
			continue
		}
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			out = append(out, lintFile(fset, pkg.Files[name])...)
		}
	}
	return out
}

func hasPackageComment(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			return true
		}
	}
	return false
}

// lintFile reports every exported, undocumented top-level declaration in
// one file.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv, exported := receiverName(d.Recv)
				if !exported {
					continue
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
			} else {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// The block's doc comment covers every spec in it;
					// a spec-level doc or trailing line comment also counts.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), d.Tok.String(), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's base type name and whether it is
// exported; methods on unexported types are not part of the API surface.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}
