// Command ofcontrollerd is a standalone OpenFlow 1.3 controller speaking
// the repository's wire codec over real TCP. It runs a simple reactive
// policy: every punted flow gets an exact-match rule toward a fixed output
// port, plus a Packet-Out for the triggering packet. Pair it with one or
// more `ofagent` processes.
//
// Usage:
//
//	ofcontrollerd -addr 127.0.0.1:6633 -out 2 [-telemetry-addr 127.0.0.1:9090]
//
// With -telemetry-addr set, Prometheus metrics are served on
// /metrics and Go profiling on /debug/pprof/.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"scotch/internal/ofnet"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/telemetry"
)

type reactive struct {
	out uint32
}

func (r *reactive) SwitchConnected(sw *ofnet.SwitchConn) {
	log.Printf("switch connected: dpid=%#x tables=%d", sw.DPID, sw.NTables)
}

func (r *reactive) SwitchGone(sw *ofnet.SwitchConn) {
	log.Printf("switch gone: dpid=%#x (packet-ins served: %d)", sw.DPID, sw.PacketIns.Load())
}

func (r *reactive) PacketIn(sw *ofnet.SwitchConn, pin *openflow.PacketIn) {
	pkt, err := packet.Parse(pin.Data)
	if err != nil {
		log.Printf("dpid=%#x packet-in with unparseable data: %v", sw.DPID, err)
		return
	}
	key := pkt.FlowKey()
	log.Printf("dpid=%#x packet-in in_port=%d flow=%v", sw.DPID, pin.Match.InPort, key)
	match := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4,
		IPProto: key.Proto,
		IPv4Src: key.Src,
		IPv4Dst: key.Dst,
	}
	if err := sw.Install(&openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Priority:    100,
		IdleTimeout: 30,
		Match:       match,
		Instructions: []openflow.Instruction{
			openflow.ApplyActions(openflow.OutputAction(r.out)),
		},
	}); err != nil {
		log.Printf("install failed: %v", err)
		return
	}
	sw.PacketOut(&openflow.PacketOut{
		BufferID: 0xffffffff,
		InPort:   pin.Match.InPort,
		Actions:  []openflow.Action{openflow.OutputAction(r.out)},
		Data:     pin.Data,
	})
}

func main() {
	addr := flag.String("addr", "127.0.0.1:6633", "listen address")
	out := flag.Uint("out", 2, "output port for reactive rules")
	telAddr := flag.String("telemetry-addr", "", "serve /metrics and /debug/pprof on this address (empty disables)")
	flag.Parse()

	ctrl, err := ofnet.NewController(*addr, &reactive{out: uint32(*out)})
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("ofcontrollerd listening on %s", ctrl.Addr())

	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		ctrl.BindMetrics(reg)
		tel, err := telemetry.StartServer(*telAddr, reg)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer tel.Close()
		log.Printf("telemetry on http://%s/metrics", tel.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctrl.Close()
}
