// Command ofcontrollerd is a standalone OpenFlow 1.3 controller speaking
// the repository's wire codec over real TCP. It runs a simple reactive
// policy: every punted flow gets an exact-match rule toward a fixed output
// port, plus a Packet-Out for the triggering packet. Pair it with one or
// more `ofagent` processes.
//
// Usage:
//
//	ofcontrollerd -addr 127.0.0.1:6633 -out 2 [-telemetry-addr 127.0.0.1:9090]
//
// With -telemetry-addr set, Prometheus metrics are served on /metrics,
// Go profiling on /debug/pprof/, and a live cluster view on /statusz
// (JSON with ?format=json). -mutex-profile-fraction and
// -block-profile-rate additionally enable the runtime contention
// profiles behind /debug/pprof/mutex and /debug/pprof/block (both off
// by default, matching the Go runtime's defaults).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scotch/internal/obs"
	"scotch/internal/ofnet"
	"scotch/internal/openflow"
	"scotch/internal/packet"
	"scotch/internal/sim"
	"scotch/internal/telemetry"
)

type reactive struct {
	out uint32
}

func (r *reactive) SwitchConnected(sw *ofnet.SwitchConn) {
	log.Printf("switch connected: dpid=%#x tables=%d", sw.DPID, sw.NTables)
}

func (r *reactive) SwitchGone(sw *ofnet.SwitchConn) {
	log.Printf("switch gone: dpid=%#x (packet-ins served: %d)", sw.DPID, sw.PacketIns.Load())
}

func (r *reactive) PacketIn(sw *ofnet.SwitchConn, pin *openflow.PacketIn) {
	pkt, err := packet.Parse(pin.Data)
	if err != nil {
		log.Printf("dpid=%#x packet-in with unparseable data: %v", sw.DPID, err)
		return
	}
	key := pkt.FlowKey()
	log.Printf("dpid=%#x packet-in in_port=%d flow=%v", sw.DPID, pin.Match.InPort, key)
	match := openflow.Match{
		Fields:  openflow.FieldEthType | openflow.FieldIPProto | openflow.FieldIPv4Src | openflow.FieldIPv4Dst,
		EthType: packet.EtherTypeIPv4,
		IPProto: key.Proto,
		IPv4Src: key.Src,
		IPv4Dst: key.Dst,
	}
	if err := sw.Install(&openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Priority:    100,
		IdleTimeout: 30,
		Match:       match,
		Instructions: []openflow.Instruction{
			openflow.ApplyActions(openflow.OutputAction(r.out)),
		},
	}); err != nil {
		log.Printf("install failed: %v", err)
		return
	}
	sw.PacketOut(&openflow.PacketOut{
		BufferID: 0xffffffff,
		InPort:   pin.Match.InPort,
		Actions:  []openflow.Action{openflow.OutputAction(r.out)},
		Data:     pin.Data,
	})
}

// liveSeries wraps one instantaneous counter reading as a SeriesView, so
// a process without a sampling observatory can still serve /statusz.
func liveSeries(name string, v float64) obs.SeriesView {
	return obs.SeriesView{Name: name, Summary: obs.Summary{N: 1, Last: v, Min: v, Max: v, Mean: v}}
}

// liveView builds a point-in-time ClusterView from the controller's
// atomic counters: one component for the listener, one per connected
// switch.
func liveView(ctrl *ofnet.Controller, start time.Time) *obs.ClusterView {
	v := &obs.ClusterView{At: sim.Time(time.Since(start))}
	v.Components = append(v.Components, obs.ComponentView{Name: "controller", Series: []obs.SeriesView{
		liveSeries("conns_accepted_total", float64(ctrl.ConnsAccepted.Load())),
		liveSeries("messages_received_total", float64(ctrl.MsgsReceived.Load())),
		liveSeries("packet_ins_total", float64(ctrl.PacketInsRecv.Load())),
		liveSeries("write_errors_total", float64(ctrl.WriteErrors.Load())),
		liveSeries("switches", float64(len(ctrl.Switches()))),
	}})
	for _, sw := range ctrl.Switches() {
		v.Components = append(v.Components, obs.ComponentView{
			Name: fmt.Sprintf("switch/%#x", sw.DPID),
			Series: []obs.SeriesView{
				liveSeries("packet_ins_total", float64(sw.PacketIns.Load())),
				liveSeries("install_retries_total", float64(sw.InstallRetries.Load())),
				liveSeries("slave_suppressed_total", float64(sw.SlaveSuppressed.Load())),
			},
		})
	}
	return v
}

func main() {
	addr := flag.String("addr", "127.0.0.1:6633", "listen address")
	out := flag.Uint("out", 2, "output port for reactive rules")
	telAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/pprof, and /statusz on this address (empty disables)")
	mutexFrac := flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction sampling denominator (0 leaves mutex profiling off)")
	blockRate := flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate nanosecond threshold (0 leaves block profiling off)")
	flag.Parse()

	ctrl, err := ofnet.NewController(*addr, &reactive{out: uint32(*out)})
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("ofcontrollerd listening on %s", ctrl.Addr())

	if *telAddr != "" {
		telemetry.EnableContentionProfiling(*mutexFrac, *blockRate)
		reg := telemetry.NewRegistry()
		ctrl.BindMetrics(reg)
		start := time.Now()
		tel, err := telemetry.StartServer(*telAddr, reg,
			telemetry.WithHandler("/statusz", obs.Handler(func() *obs.ClusterView {
				return liveView(ctrl, start)
			})))
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer tel.Close()
		log.Printf("telemetry on http://%s/metrics, statusz on http://%s/statusz", tel.Addr(), tel.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctrl.Close()
}
